package osmem

import (
	"math/rand"
	"testing"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/pagetable"
)

func TestDecomposeChunkPlain4K(t *testing.T) {
	c := mem.Chunk{StartVPN: 100, StartPFN: 5000, Pages: 1000}
	segs := DecomposeChunk(c, Policy{}, 0)
	if len(segs) != 1 || segs[0].Kind != Seg4K || segs[0].Pages != 1000 {
		t.Fatalf("segs = %+v", segs)
	}
}

func TestDecomposeChunkTHP(t *testing.T) {
	// Congruent chunk (VPN-PFN offset is a multiple of 512) spanning
	// several 2 MiB units with misaligned head and tail.
	c := mem.Chunk{StartVPN: 500, StartPFN: 512*10 + 500, Pages: 512*3 + 100}
	segs := DecomposeChunk(c, Policy{THP: true}, 0)
	if len(segs) != 3 {
		t.Fatalf("segs = %+v", segs)
	}
	if segs[0].Kind != Seg4K || segs[0].Pages != 12 { // 500..512
		t.Errorf("head = %+v", segs[0])
	}
	if segs[1].Kind != Seg2M || segs[1].StartVPN != 512 || segs[1].Pages != 512*3 {
		t.Errorf("huge = %+v", segs[1])
	}
	if segs[2].Kind != Seg4K || segs[2].Pages != 88 {
		t.Errorf("tail = %+v", segs[2])
	}

	// Incongruent chunk: no promotion possible.
	c2 := mem.Chunk{StartVPN: 0, StartPFN: 7, Pages: 2048}
	segs2 := DecomposeChunk(c2, Policy{THP: true}, 0)
	if len(segs2) != 1 || segs2[0].Kind != Seg4K {
		t.Errorf("incongruent segs = %+v", segs2)
	}
}

func TestDecomposeChunkAnchored(t *testing.T) {
	// Chunk starting misaligned to distance 16: head is 4K, tail anchored.
	c := mem.Chunk{StartVPN: 10, StartPFN: 1000, Pages: 100}
	segs := DecomposeChunk(c, Policy{Anchors: true}, 16)
	if len(segs) != 2 {
		t.Fatalf("segs = %+v", segs)
	}
	if segs[0].Kind != Seg4K || segs[0].StartVPN != 10 || segs[0].Pages != 6 {
		t.Errorf("head = %+v", segs[0])
	}
	if segs[1].Kind != SegAnchored || segs[1].StartVPN != 16 || segs[1].Pages != 94 {
		t.Errorf("tail = %+v", segs[1])
	}

	// Aligned chunk: fully anchored.
	c2 := mem.Chunk{StartVPN: 32, StartPFN: 64, Pages: 64}
	segs2 := DecomposeChunk(c2, Policy{Anchors: true}, 16)
	if len(segs2) != 1 || segs2[0].Kind != SegAnchored {
		t.Errorf("aligned segs = %+v", segs2)
	}

	// Chunk too small to contain an aligned anchor point: plain 4K.
	c3 := mem.Chunk{StartVPN: 17, StartPFN: 100, Pages: 10}
	segs3 := DecomposeChunk(c3, Policy{Anchors: true}, 64)
	if len(segs3) != 1 || segs3[0].Kind != Seg4K {
		t.Errorf("small segs = %+v", segs3)
	}
}

func TestDecomposeChunkAnchorsWithTHPHead(t *testing.T) {
	// Large distance: the long misaligned head gets huge pages.
	c := mem.Chunk{StartVPN: 512, StartPFN: 512 * 7, Pages: 8192 - 512}
	segs := DecomposeChunk(c, Policy{THP: true, Anchors: true}, 8192)
	// Head [512, 8192) is all 2 MiB-eligible; no anchored tail because
	// the chunk ends exactly at the first aligned point.
	if len(segs) != 1 || segs[0].Kind != Seg2M || segs[0].Pages != 8192-512 {
		t.Fatalf("segs = %+v", segs)
	}

	c2 := mem.Chunk{StartVPN: 512, StartPFN: 512 * 7, Pages: 16384 - 512}
	segs2 := DecomposeChunk(c2, Policy{THP: true, Anchors: true}, 8192)
	if len(segs2) != 2 || segs2[0].Kind != Seg2M || segs2[1].Kind != SegAnchored {
		t.Fatalf("segs = %+v", segs2)
	}
	if segs2[1].StartVPN != 8192 || segs2[1].Pages != 8192 {
		t.Errorf("anchored tail = %+v", segs2[1])
	}
}

func TestDecomposeChunkConservation(t *testing.T) {
	// Property: segments partition the chunk exactly, in order, and
	// translate identically to the chunk.
	r := rand.New(rand.NewSource(21))
	pols := []Policy{{}, {THP: true}, {Anchors: true}, {THP: true, Anchors: true}}
	for trial := 0; trial < 500; trial++ {
		c := mem.Chunk{
			StartVPN: mem.VPN(r.Intn(1 << 20)),
			StartPFN: mem.PFN(r.Intn(1 << 20)),
			Pages:    uint64(1 + r.Intn(1<<14)),
		}
		pol := pols[r.Intn(len(pols))]
		dist := uint64(1) << (1 + r.Intn(16))
		segs := DecomposeChunk(c, pol, dist)
		v := c.StartVPN
		for _, s := range segs {
			if s.StartVPN != v {
				t.Fatalf("trial %d: gap/overlap at %v: %+v", trial, v, segs)
			}
			if s.StartPFN != c.Translate(s.StartVPN) {
				t.Fatalf("trial %d: wrong segment PFN: %+v", trial, s)
			}
			if s.Kind == Seg2M && (!s.StartVPN.IsAligned(mem.PagesPer2M) || !s.StartPFN.IsAligned(mem.PagesPer2M) || s.Pages%mem.PagesPer2M != 0) {
				t.Fatalf("trial %d: misaligned 2M segment: %+v", trial, s)
			}
			v = s.EndVPN()
		}
		if v != c.EndVPN() {
			t.Fatalf("trial %d: segments end at %v, chunk at %v", trial, v, c.EndVPN())
		}
	}
}

// checkTranslations verifies that every mapped VPN translates correctly
// through the page table (regular walk) and, for anchor-covered pages,
// through the anchor path.
func checkTranslations(t *testing.T, p *Process) {
	t.Helper()
	d := p.AnchorDistance()
	for _, c := range p.Chunks() {
		step := mem.VPN(1 + c.Pages/257) // sample large chunks
		for v := c.StartVPN; v < c.EndVPN(); v += step {
			want := c.Translate(v)
			got, ok := p.Translate(v)
			if !ok || got != want {
				t.Fatalf("reference translate(%#x) = %#x, %v; want %#x", uint64(v), uint64(got), ok, uint64(want))
			}
			w := p.PageTable().Walk(v)
			if !w.Present || w.PFN != want {
				t.Fatalf("page table walk(%#x) = %+v; want pfn %#x", uint64(v), w, uint64(want))
			}
			if p.Policy().Anchors {
				avpn := core.AnchorVPN(v, d)
				contig := p.PageTable().AnchorContiguity(avpn, d)
				if core.Covered(v, avpn, contig) {
					aw := p.PageTable().Walk(avpn)
					if !aw.Present {
						t.Fatalf("anchor %#x covering %#x has no PTE", uint64(avpn), uint64(v))
					}
					if core.TranslateViaAnchor(v, avpn, aw.PFN) != want {
						t.Fatalf("anchor translation of %#x wrong", uint64(v))
					}
				}
			}
		}
	}
}

func randomChunks(r *rand.Rand, n int, maxPages uint64) mem.ChunkList {
	var cl mem.ChunkList
	vpn := mem.VPN(r.Intn(1000))
	pfn := mem.PFN(1 << 21)
	for i := 0; i < n; i++ {
		pages := uint64(1 + r.Intn(int(maxPages)))
		cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: pfn, Pages: pages})
		vpn += mem.VPN(pages + uint64(r.Intn(64))) // occasional VA adjacency
		pfn += mem.PFN(pages + uint64(1+r.Intn(1024)))
	}
	return cl
}

func TestInstallChunksAllPolicies(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, pol := range []Policy{{}, {THP: true}, {Anchors: true}, {THP: true, Anchors: true}} {
		p := NewProcess(pol)
		cl := randomChunks(r, 30, 4096)
		if err := p.InstallChunks(cl, 0); err != nil {
			t.Fatal(err)
		}
		checkTranslations(t, p)
		if p.FootprintPages() != cl.TotalPages() {
			t.Errorf("footprint = %d, want %d", p.FootprintPages(), cl.TotalPages())
		}
	}
}

func TestInstallSelectsDistance(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	// One giant chunk: selection must pick the maximum distance.
	cl := mem.ChunkList{{StartVPN: 0, StartPFN: 0, Pages: 1 << 21}}
	if err := p.InstallChunks(cl, 0); err != nil {
		t.Fatal(err)
	}
	if p.AnchorDistance() != 1<<16 {
		t.Errorf("distance = %d, want %d", p.AnchorDistance(), 1<<16)
	}
	// Fixed distance overrides selection.
	if err := p.InstallChunks(cl, 64); err != nil {
		t.Fatal(err)
	}
	if p.AnchorDistance() != 64 {
		t.Errorf("fixed distance = %d, want 64", p.AnchorDistance())
	}
	if err := p.InstallChunks(cl, 3); err == nil {
		t.Error("invalid fixed distance accepted")
	}
}

func TestInstallRejectsOverlap(t *testing.T) {
	p := NewProcess(Policy{})
	cl := mem.ChunkList{
		{StartVPN: 0, StartPFN: 0, Pages: 10},
		{StartVPN: 5, StartPFN: 100, Pages: 10},
	}
	if err := p.InstallChunks(cl, 0); err == nil {
		t.Error("overlapping chunks accepted")
	}
}

func TestAnchorCoverageWithinChunk(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	// A 100-page chunk at VPN 10 with forced distance 16.
	cl := mem.ChunkList{{StartVPN: 10, StartPFN: 1 << 20, Pages: 100}}
	if err := p.InstallChunks(cl, 16); err != nil {
		t.Fatal(err)
	}
	pt := p.PageTable()
	// Head pages [10,16) are not anchor-covered: their AVPN (0) is
	// unmapped.
	if got := pt.AnchorContiguity(0, 16); got != 0 {
		t.Errorf("anchor 0 contiguity = %d, want 0", got)
	}
	// Anchors at 16, 32, ..., 96 cover through the chunk end (VPN 110).
	for avpn := mem.VPN(16); avpn < 110; avpn += 16 {
		want := uint64(110 - avpn)
		if got := pt.AnchorContiguity(avpn, 16); got != want {
			t.Errorf("anchor %d contiguity = %d, want %d", avpn, got, want)
		}
	}
	// VPN 109 (last page) is covered by anchor 96: 109-96=13 < 14.
	if !core.Covered(109, 96, pt.AnchorContiguity(96, 16)) {
		t.Error("last page not covered")
	}
	// VPN 110 is not covered.
	if core.Covered(110, 96, pt.AnchorContiguity(96, 16)) {
		t.Error("page past chunk covered")
	}
}

func TestHugePagesInstalled(t *testing.T) {
	p := NewProcess(Policy{THP: true})
	cl := mem.ChunkList{{StartVPN: 0, StartPFN: 512 * 4, Pages: 2048}}
	if err := p.InstallChunks(cl, 0); err != nil {
		t.Fatal(err)
	}
	if p.HugePages() != 4 {
		t.Errorf("huge pages = %d, want 4", p.HugePages())
	}
	if !p.IsHugeMapped(700) {
		t.Error("page in huge region not reported huge")
	}
	w := p.PageTable().Walk(700)
	if w.Class != mem.Class2M || w.PFN != 512*4+700 {
		t.Errorf("walk = %+v", w)
	}
}

func TestAppendChunkMergesAndExtendsAnchors(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 1000, Pages: 32}}, 16); err != nil {
		t.Fatal(err)
	}
	if got := p.PageTable().AnchorContiguity(16, 16); got != 16 {
		t.Fatalf("pre-merge anchor 16 = %d, want 16", got)
	}
	// Append a physically and virtually adjacent chunk.
	if err := p.AppendChunk(mem.Chunk{StartVPN: 32, StartPFN: 1032, Pages: 32}); err != nil {
		t.Fatal(err)
	}
	if len(p.Chunks()) != 1 || p.Chunks()[0].Pages != 64 {
		t.Fatalf("chunks = %v", p.Chunks())
	}
	// The old anchor's run now extends across the merged chunk.
	if got := p.PageTable().AnchorContiguity(16, 16); got != 48 {
		t.Errorf("post-merge anchor 16 = %d, want 48", got)
	}
	checkTranslations(t, p)

	// Overlapping append is rejected.
	if err := p.AppendChunk(mem.Chunk{StartVPN: 10, StartPFN: 9999, Pages: 5}); err == nil {
		t.Error("overlapping append accepted")
	}
	if err := p.AppendChunk(mem.Chunk{}); err == nil {
		t.Error("empty append accepted")
	}
}

func TestUnmapRangeSplitsAndShrinksAnchors(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 1 << 20, Pages: 128}}, 16); err != nil {
		t.Fatal(err)
	}
	before := p.EntryShootdowns()
	p.UnmapRange(60, 8) // cut [60, 68)
	if p.EntryShootdowns() <= before {
		t.Error("no shootdowns accounted")
	}
	if len(p.Chunks()) != 2 {
		t.Fatalf("chunks = %v", p.Chunks())
	}
	if _, ok := p.Translate(60); ok {
		t.Error("unmapped page still translates")
	}
	if p.PageTable().Walk(64).Present {
		t.Error("unmapped page still in page table")
	}
	// Anchor at 48's run now stops at 60.
	if got := p.PageTable().AnchorContiguity(48, 16); got != 12 {
		t.Errorf("anchor 48 contiguity = %d, want 12", got)
	}
	// Anchor at 64 is inside the hole: cleared.
	if got := p.PageTable().AnchorContiguity(64, 16); got != 0 {
		t.Errorf("anchor 64 contiguity = %d, want 0", got)
	}
	// Anchor at 80 covers the second fragment through its end.
	if got := p.PageTable().AnchorContiguity(80, 16); got != 48 {
		t.Errorf("anchor 80 contiguity = %d, want 48", got)
	}
	checkTranslations(t, p)
}

func TestUnmapDemotesHugePages(t *testing.T) {
	p := NewProcess(Policy{THP: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 0, Pages: 1024}}, 0); err != nil {
		t.Fatal(err)
	}
	if p.HugePages() != 2 {
		t.Fatalf("huge pages = %d, want 2", p.HugePages())
	}
	p.UnmapRange(100, 10)
	if p.HugePages() != 1 {
		t.Errorf("huge pages after punch = %d, want 1", p.HugePages())
	}
	// Surviving pages of the demoted huge page are still mapped, as 4K.
	w := p.PageTable().Walk(99)
	if !w.Present || w.Class != mem.Class4K || w.PFN != 99 {
		t.Errorf("walk(99) = %+v", w)
	}
	if p.PageTable().Walk(105).Present {
		t.Error("punched page still mapped")
	}
	w = p.PageTable().Walk(600)
	if !w.Present || w.Class != mem.Class2M {
		t.Errorf("untouched huge page = %+v", w)
	}
	checkTranslations(t, p)
}

func TestUnmapWholeChunksAndEdges(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	cl := mem.ChunkList{
		{StartVPN: 0, StartPFN: 1 << 20, Pages: 32},
		{StartVPN: 100, StartPFN: 2 << 20, Pages: 32},
	}
	if err := p.InstallChunks(cl, 16); err != nil {
		t.Fatal(err)
	}
	p.UnmapRange(0, 32) // exactly the first chunk
	if len(p.Chunks()) != 1 || p.Chunks()[0].StartVPN != 100 {
		t.Fatalf("chunks = %v", p.Chunks())
	}
	p.UnmapRange(90, 20) // head of second chunk
	if p.Chunks()[0].StartVPN != 110 || p.Chunks()[0].Pages != 22 {
		t.Fatalf("chunks = %v", p.Chunks())
	}
	p.UnmapRange(500, 50) // nothing there: no-op
	if len(p.Chunks()) != 1 {
		t.Fatalf("chunks = %v", p.Chunks())
	}
	checkTranslations(t, p)
}

func TestChangeDistanceRewritesAnchors(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 4096, Pages: 256}}, 16); err != nil {
		t.Fatal(err)
	}
	flushes := 0
	p.OnFlush(func() { flushes++ })

	res, cost := p.ChangeDistance(64, DefaultSweepCost)
	if p.AnchorDistance() != 64 {
		t.Error("distance not changed")
	}
	if res.AnchorsVisited != 4 {
		t.Errorf("anchors visited = %d, want 4", res.AnchorsVisited)
	}
	if cost <= 0 {
		t.Error("zero sweep cost")
	}
	if flushes != 1 {
		t.Errorf("flushes = %d, want 1", flushes)
	}
	if got := p.PageTable().AnchorContiguity(64, 64); got != 192 {
		t.Errorf("anchor 64 contiguity = %d, want 192", got)
	}
	if p.DistanceChanges() != 1 {
		t.Errorf("distance changes = %d", p.DistanceChanges())
	}
	checkTranslations(t, p)
}

func TestReselect(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	// Install with a pinned, deliberately bad distance.
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 0, Pages: 1 << 20}}, 4); err != nil {
		t.Fatal(err)
	}
	res := p.Reselect(DefaultSweepCost)
	if !res.Changed || res.Selected != 1<<16 || res.Previous != 4 {
		t.Fatalf("reselect = %+v", res)
	}
	// A second reselect is stable: no change.
	res2 := p.Reselect(DefaultSweepCost)
	if res2.Changed {
		t.Errorf("unstable reselect: %+v", res2)
	}
	// Non-anchor processes never change.
	q := NewProcess(Policy{})
	if err := q.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 0, Pages: 64}}, 0); err != nil {
		t.Fatal(err)
	}
	if r := q.Reselect(DefaultSweepCost); r.Changed {
		t.Error("non-anchor process changed distance")
	}
}

func TestSweepCostCalibration(t *testing.T) {
	// Section 3.3: a 30 GiB mapping costs ~452 ms to re-anchor at
	// distance 8. 30 GiB = 7,864,320 pages -> 983,040 anchors.
	// The default model must land within 2x of the paper's figure.
	est := DefaultSweepCost.Estimate(sweepResultForAnchors(983040))
	if est.Milliseconds() < 226 || est.Milliseconds() > 904 {
		t.Errorf("30GiB/d=8 sweep estimate = %v, want within 2x of 452ms", est)
	}
	est64 := DefaultSweepCost.Estimate(sweepResultForAnchors(122880))
	if est64.Milliseconds() < 20 || est64.Milliseconds() > 150 {
		t.Errorf("30GiB/d=64 sweep estimate = %v, want within ~2x of 71.7ms", est64)
	}
}

func TestSetDistance(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 0, Pages: 1024}}, 16); err != nil {
		t.Fatal(err)
	}
	flushes := 0
	p.OnFlush(func() { flushes++ })
	p.SetDistance(16) // same distance: no-op
	if flushes != 0 {
		t.Error("no-op SetDistance flushed")
	}
	p.SetDistance(256)
	if flushes != 1 || p.AnchorDistance() != 256 {
		t.Error("SetDistance did not take effect")
	}
	checkTranslations(t, p)
}

func TestRandomizedUpdateStress(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	p := NewProcess(Policy{THP: true, Anchors: true})
	if err := p.InstallChunks(randomChunks(r, 20, 2048), 0); err != nil {
		t.Fatal(err)
	}
	vpnCeil := 1 << 18
	for step := 0; step < 60; step++ {
		switch r.Intn(4) {
		case 0, 1:
			v := mem.VPN(r.Intn(vpnCeil))
			pages := uint64(1 + r.Intn(512))
			p.UnmapRange(v, pages)
		case 2:
			c := mem.Chunk{
				StartVPN: mem.VPN(r.Intn(vpnCeil)),
				StartPFN: mem.PFN(1<<22 + step*4096),
				Pages:    uint64(1 + r.Intn(512)),
			}
			_ = p.AppendChunk(c) // overlap rejections are fine
		case 3:
			p.Reselect(DefaultSweepCost)
		}
	}
	if err := p.Chunks().Validate(); err != nil {
		t.Fatal(err)
	}
	checkTranslations(t, p)
}

func sweepResultForAnchors(n uint64) pagetable.SweepResult {
	return pagetable.SweepResult{AnchorsVisited: n, PTEWrites: 2 * n, EntriesScanned: n * 8}
}

func TestPartitionRegions(t *testing.T) {
	// Fine-grained chunks followed by one huge chunk: two regions with
	// very different distances.
	var cl mem.ChunkList
	vpn := mem.VPN(0)
	for i := 0; i < 100; i++ {
		cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: mem.PFN(1<<20 + i*64), Pages: 4})
		vpn += 4
	}
	cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: 1 << 24, Pages: 1 << 16})

	regions := PartitionRegions(cl, MaxHWRegions)
	if len(regions) != 2 {
		t.Fatalf("regions = %+v", regions)
	}
	if regions[0].Distance >= regions[1].Distance {
		t.Errorf("fine region distance %d !< huge region distance %d", regions[0].Distance, regions[1].Distance)
	}
	if regions[0].Start != 0 || regions[0].End != 400 || regions[1].End != 400+1<<16 {
		t.Errorf("region bounds wrong: %+v", regions)
	}
	if PartitionRegions(nil, 4) != nil {
		t.Error("empty chunk list produced regions")
	}
}

func TestPartitionRegionsRespectsBudget(t *testing.T) {
	// Alternating classes force many candidates; the merge must respect
	// the hardware budget.
	var cl mem.ChunkList
	vpn := mem.VPN(0)
	for i := 0; i < 40; i++ {
		pages := uint64(4)
		if i%2 == 1 {
			pages = 4096
		}
		cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: mem.PFN(uint64(1<<22) + uint64(i)<<14), Pages: pages})
		vpn += mem.VPN(pages)
	}
	regions := PartitionRegions(cl, 4)
	if len(regions) > 4 {
		t.Fatalf("got %d regions, budget 4", len(regions))
	}
	// Regions must be ordered, non-overlapping, and cover the span.
	for i := 1; i < len(regions); i++ {
		if regions[i].Start < regions[i-1].End {
			t.Errorf("regions overlap: %+v", regions)
		}
	}
}

func TestInstallChunksRegions(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	var cl mem.ChunkList
	vpn := mem.VPN(0)
	for i := 0; i < 64; i++ { // fine-grained half
		cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: mem.PFN(1<<20 + i*16), Pages: 4})
		vpn += 4
	}
	cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: 1 << 24, Pages: 1 << 14}) // huge half
	if err := p.InstallChunksRegions(cl, 0); err != nil {
		t.Fatal(err)
	}
	if len(p.Regions()) != 2 {
		t.Fatalf("regions = %+v", p.Regions())
	}
	dFine, dHuge := p.DistanceAt(0), p.DistanceAt(vpn+100)
	if dFine >= dHuge {
		t.Errorf("distances not differentiated: fine=%d huge=%d", dFine, dHuge)
	}
	// Anchors must exist at each region's own alignment.
	if got := p.PageTable().AnchorContiguity(0, dFine); got != 4 {
		t.Errorf("fine-region anchor contiguity = %d, want 4", got)
	}
	hugeAnchor := (vpn).AlignUp(dHuge)
	if got := p.PageTable().AnchorContiguity(hugeAnchor, dHuge); got == 0 {
		t.Error("huge-region anchor missing")
	}
	checkTranslations(t, p)

	// Reselect must not disturb a multi-region install.
	if r := p.Reselect(DefaultSweepCost); r.Changed {
		t.Error("reselect changed a multi-region process")
	}
	// Reverting to a single distance clears the region table.
	p.SetDistance(64)
	if p.Regions() != nil {
		t.Error("SetDistance kept regions")
	}

	q := NewProcess(Policy{})
	if err := q.InstallChunksRegions(cl, 0); err == nil {
		t.Error("multi-region install without anchor policy accepted")
	}
}

func TestDistanceAtFallsBackBetweenRegions(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	cl := mem.ChunkList{
		{StartVPN: 0, StartPFN: 1 << 20, Pages: 1 << 13},
		{StartVPN: 1 << 20, StartPFN: 1 << 24, Pages: 4},
	}
	if err := p.InstallChunksRegions(cl, 0); err != nil {
		t.Fatal(err)
	}
	// A VPN in the gap between regions falls back to the process-wide
	// distance.
	if got := p.DistanceAt(1 << 18); got != p.AnchorDistance() {
		t.Errorf("gap distance = %d, want process default %d", got, p.AnchorDistance())
	}
}

// TestPageSharingAcrossProcesses models Section 3.3's sharing note: two
// processes map the same physical chunk, each records contiguity in its
// own page table, and each may use a different anchor distance.
func TestPageSharingAcrossProcesses(t *testing.T) {
	shared := mem.Chunk{StartVPN: 0, StartPFN: 1 << 22, Pages: 4096}

	a := NewProcess(Policy{Anchors: true})
	if err := a.InstallChunks(mem.ChunkList{shared}, 64); err != nil {
		t.Fatal(err)
	}
	// Process B maps the same frames at a different VA with a different
	// anchor distance.
	b := NewProcess(Policy{Anchors: true})
	sharedB := mem.Chunk{StartVPN: 1 << 20, StartPFN: shared.StartPFN, Pages: shared.Pages}
	if err := b.InstallChunks(mem.ChunkList{sharedB}, 512); err != nil {
		t.Fatal(err)
	}

	// Each page table carries its own anchors over the shared frames.
	if got := a.PageTable().AnchorContiguity(64, 64); got != 4096-64 {
		t.Errorf("process A anchor = %d", got)
	}
	if got := b.PageTable().AnchorContiguity((1<<20)+512, 512); got != 4096-512 {
		t.Errorf("process B anchor = %d", got)
	}
	// Same frame reachable through both, at each process's own VA.
	pa, _ := a.Translate(100)
	pb, _ := b.Translate(1<<20 + 100)
	if pa != pb || pa != shared.StartPFN+100 {
		t.Errorf("shared frame translates differently: %#x vs %#x", uint64(pa), uint64(pb))
	}
	// Unmapping in A must not disturb B.
	a.UnmapRange(0, 4096)
	if _, ok := b.Translate(1<<20 + 100); !ok {
		t.Error("unmap in process A disturbed process B")
	}
}

// TestMultiRegionUnmapInterplay: unmapping across a region boundary must
// rewrite anchors at each region's own alignment and keep translations
// exact.
func TestMultiRegionUnmapInterplay(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	var cl mem.ChunkList
	vpn := mem.VPN(0)
	for i := 0; i < 128; i++ { // fine region: 4-page chunks
		cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: mem.PFN(1<<20 + i*16), Pages: 4})
		vpn += 4
	}
	hugeStart := vpn
	cl = append(cl, mem.Chunk{StartVPN: hugeStart, StartPFN: 1 << 24, Pages: 1 << 13})
	if err := p.InstallChunksRegions(cl, 0); err != nil {
		t.Fatal(err)
	}
	dFine, dHuge := p.DistanceAt(0), p.DistanceAt(hugeStart+100)
	if dFine >= dHuge {
		t.Fatalf("regions not differentiated: %d vs %d", dFine, dHuge)
	}
	// Cut a range spanning the boundary between the regions.
	cut := hugeStart - 32
	p.UnmapRange(cut, 64)
	for _, v := range []mem.VPN{cut - 1, cut, cut + 63, cut + 64, hugeStart + 100} {
		got, ok := p.Translate(v)
		w := p.PageTable().Walk(v)
		if ok {
			if !w.Present || w.PFN != got {
				t.Fatalf("walk(%d) = %+v, want %#x", v, w, uint64(got))
			}
		} else if w.Present {
			t.Fatalf("unmapped %d still walks", v)
		}
	}
	// The huge region's anchor after the cut reflects the shortened run.
	avpn := (cut + 64).AlignUp(dHuge)
	if avpn < hugeStart+mem.VPN(1<<13) {
		run := p.PageTable().AnchorContiguity(avpn, dHuge)
		c, _ := p.chunks.Lookup(avpn)
		if run != uint64(c.EndVPN()-avpn) {
			t.Errorf("huge-region anchor run = %d, want %d", run, uint64(c.EndVPN()-avpn))
		}
	}
	// Fine-region anchors before the cut stop at the hole.
	fineAnchor := (cut - mem.VPN(dFine)).AlignDown(dFine)
	run := p.PageTable().AnchorContiguity(fineAnchor, dFine)
	if core.Covered(cut, fineAnchor, run) {
		t.Errorf("fine anchor %d (run %d) covers the hole at %d", fineAnchor, run, cut)
	}
	checkTranslations(t, p)
}
