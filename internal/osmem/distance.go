package osmem

import (
	"time"

	"hybridtlb/internal/core"
	"hybridtlb/internal/pagetable"
)

// This file implements anchor distance management ("Anchor Distance
// Change", Section 3.3): the OS periodically re-runs the selection
// algorithm on the current contiguity histogram and, if the best distance
// differs from the current one, sweeps the page table to rewrite anchor
// entries at the new alignment and flushes the TLBs.

// SweepCostModel converts a sweep's work counters into wall-clock time.
// The default is calibrated against the paper's measurement: sweeping a
// 30 GiB mapping costs 452 ms / 71.7 ms / 1.7 ms when changing to
// distances 8 / 64 / 512 — roughly linear in the number of anchors
// visited (the strided sweep touches only distance-aligned entries).
type SweepCostModel struct {
	// AnchorNanos is the cost per anchor visited: fetching the PTE cache
	// block, computing contiguity from the VMA tree, and writing the
	// entry.
	AnchorNanos float64
	// FlushNanos is the fixed cost of the whole-TLB invalidation that
	// ends the sweep.
	FlushNanos float64
}

// DefaultSweepCost is calibrated to the paper's 30 GiB measurements.
var DefaultSweepCost = SweepCostModel{AnchorNanos: 460, FlushNanos: 50_000}

// Estimate converts sweep counters to time.
func (m SweepCostModel) Estimate(r pagetable.SweepResult) time.Duration {
	ns := float64(r.AnchorsVisited)*m.AnchorNanos + m.FlushNanos
	return time.Duration(ns)
}

// ChangeDistance switches the process to a new anchor distance: it
// rewrites all anchor entries at the new alignment (a strided page table
// sweep) and flushes the TLBs. It returns the sweep work counters and the
// modeled wall-clock cost.
func (p *Process) ChangeDistance(d uint64, costModel SweepCostModel) (pagetable.SweepResult, time.Duration) {
	if !core.ValidDistance(d) {
		panic("osmem: invalid anchor distance")
	}
	p.regions = nil // back to a single process-wide distance
	p.dist = d
	p.distanceChanges++
	res := p.sweepAnchors()
	p.flushTLBs()
	return res, costModel.Estimate(res)
}

// sweepAnchors rewrites every anchor for the current distance, deriving
// contiguity from the chunk list (run length from the anchor to its
// chunk's end).
func (p *Process) sweepAnchors() pagetable.SweepResult {
	return p.pt.SweepAnchors(p.dist, p.anchorRun)
}

// ReselectResult reports one periodic distance re-evaluation.
type ReselectResult struct {
	Previous uint64
	Selected uint64
	Changed  bool
	Sweep    pagetable.SweepResult
	Cost     time.Duration
}

// Reselect runs the periodic distance check (the paper evaluates it every
// one billion instructions): it recomputes the best distance from the
// current contiguity histogram and changes the distance only when the
// selection differs from the current value.
func (p *Process) Reselect(costModel SweepCostModel) ReselectResult {
	res := ReselectResult{Previous: p.dist}
	if !p.policy.Anchors || len(p.regions) > 0 {
		// Multi-region processes keep their per-region distances;
		// periodic re-partitioning is future work (as in the paper).
		res.Selected = p.dist
		return res
	}
	best, _ := core.SelectDistanceModel(p.Histogram(), p.policy.Cost)
	res.Selected = best
	if best != p.dist {
		res.Changed = true
		res.Sweep, res.Cost = p.ChangeDistance(best, costModel)
	}
	return res
}

// SetDistance pins the anchor distance without a full reinstall, sweeping
// anchors at the new alignment (used by the static-ideal configuration's
// exhaustive search).
func (p *Process) SetDistance(d uint64) {
	if !core.ValidDistance(d) {
		panic("osmem: invalid anchor distance")
	}
	if d == p.dist && len(p.regions) == 0 {
		return
	}
	p.regions = nil
	p.dist = d
	p.sweepAnchors()
	p.flushTLBs()
}
