package osmem

import (
	"math/rand"
	"testing"

	"hybridtlb/internal/core"
	"hybridtlb/internal/mem"
	"hybridtlb/internal/pagetable"
)

func TestProtString(t *testing.T) {
	cases := map[Prot]string{
		0:                               "---",
		ProtRead:                        "r--",
		ProtRead | ProtWrite:            "rw-",
		ProtRead | ProtExec:             "r-x",
		ProtRead | ProtWrite | ProtExec: "rwx",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestProtectionAtDefaults(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 1 << 20, Pages: 128}}, 16); err != nil {
		t.Fatal(err)
	}
	if got := p.ProtectionAt(10); got != ProtDefault {
		t.Errorf("default protection = %v", got)
	}
	if err := p.SetProtection(32, 16, ProtRead); err != nil {
		t.Fatal(err)
	}
	if got := p.ProtectionAt(40); got != ProtRead {
		t.Errorf("protection = %v, want r--", got)
	}
	if got := p.ProtectionAt(48); got != ProtDefault {
		t.Errorf("protection past range = %v, want default", got)
	}
	if err := p.SetProtection(0, 0, ProtRead); err == nil {
		t.Error("empty protection range accepted")
	}
}

func TestSetProtectionUpdatesPTEFlags(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 1 << 20, Pages: 64}}, 16); err != nil {
		t.Fatal(err)
	}
	if err := p.SetProtection(8, 8, ProtRead|ProtExec); err != nil {
		t.Fatal(err)
	}
	w := p.PageTable().Walk(10)
	if !w.Present {
		t.Fatal("page lost")
	}
	if w.Entry&pagetable.FlagWrite != 0 {
		t.Error("write bit still set on read-only page")
	}
	if w.Entry&pagetable.FlagNX != 0 {
		t.Error("NX set on executable page")
	}
	w = p.PageTable().Walk(20)
	if w.Entry&pagetable.FlagWrite == 0 {
		t.Error("untouched page lost write permission")
	}
}

// TestAnchorsRespectPermissionBoundaries is the Section 3.3 requirement:
// an anchor's contiguity must stop at a permission change even though the
// physical mapping is contiguous.
func TestAnchorsRespectPermissionBoundaries(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 1 << 20, Pages: 128}}, 16); err != nil {
		t.Fatal(err)
	}
	// Pre-protection: anchor at 0 covers to the chunk end.
	if got := p.PageTable().AnchorContiguity(0, 16); got != 128 {
		t.Fatalf("initial contiguity = %d", got)
	}
	// Make [40, 56) read-only: anchor at 32 must now stop at 40.
	if err := p.SetProtection(40, 16, ProtRead); err != nil {
		t.Fatal(err)
	}
	if got := p.PageTable().AnchorContiguity(32, 16); got != 8 {
		t.Errorf("anchor 32 contiguity = %d, want 8 (clamped at permission boundary)", got)
	}
	if got := p.PageTable().AnchorContiguity(0, 16); got != 40 {
		t.Errorf("anchor 0 contiguity = %d, want 40", got)
	}
	// The anchor at 48 sits inside the read-only region: its run stops
	// where the default protection resumes (56).
	if got := p.PageTable().AnchorContiguity(48, 16); got != 8 {
		t.Errorf("anchor 48 contiguity = %d, want 8", got)
	}
	// Past the region, coverage runs to the chunk end again.
	if got := p.PageTable().AnchorContiguity(64, 16); got != 64 {
		t.Errorf("anchor 64 contiguity = %d, want 64", got)
	}
	// Anchor coverage never spans the boundary.
	if core.Covered(44, 32, p.PageTable().AnchorContiguity(32, 16)) {
		t.Error("anchor covers page with different permission")
	}
}

func TestSetProtectionShootsDownTLBEntries(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 1 << 20, Pages: 64}}, 16); err != nil {
		t.Fatal(err)
	}
	var invalidated []mem.VPN
	p.OnInvalidate(func(v mem.VPN) { invalidated = append(invalidated, v) })
	if err := p.SetProtection(16, 4, ProtRead); err != nil {
		t.Fatal(err)
	}
	if len(invalidated) == 0 {
		t.Fatal("no shootdowns for protection change")
	}
	seen := make(map[mem.VPN]bool)
	for _, v := range invalidated {
		seen[v] = true
	}
	for v := mem.VPN(16); v < 20; v++ {
		if !seen[v] {
			t.Errorf("page %d not shot down", v)
		}
	}
}

func TestSetProtectionDemotesHugePages(t *testing.T) {
	p := NewProcess(Policy{THP: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 0, Pages: 1024}}, 0); err != nil {
		t.Fatal(err)
	}
	if p.HugePages() != 2 {
		t.Fatalf("huge pages = %d, want 2", p.HugePages())
	}
	if err := p.SetProtection(100, 10, ProtRead); err != nil {
		t.Fatal(err)
	}
	if p.HugePages() != 1 {
		t.Errorf("huge pages after protection split = %d, want 1", p.HugePages())
	}
	// Every page still maps to the right frame with the right flags.
	for _, v := range []mem.VPN{50, 105, 300, 700} {
		w := p.PageTable().Walk(v)
		if !w.Present || w.PFN != mem.PFN(v) {
			t.Fatalf("walk(%d) = %+v", v, w)
		}
	}
	if w := p.PageTable().Walk(105); w.Entry&pagetable.FlagWrite != 0 {
		t.Error("read-only page inside demoted huge page kept write bit")
	}
	if w := p.PageTable().Walk(300); w.Entry&pagetable.FlagWrite == 0 {
		t.Error("rw page inside demoted huge page lost write bit")
	}
}

func TestProtBoundarySearch(t *testing.T) {
	p := NewProcess(Policy{Anchors: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 1 << 20, Pages: 256}}, 16); err != nil {
		t.Fatal(err)
	}
	if err := p.SetProtection(100, 20, ProtRead); err != nil {
		t.Fatal(err)
	}
	if got := p.protBoundary(0, 256); got != 100 {
		t.Errorf("boundary from 0 = %d, want 100", got)
	}
	if got := p.protBoundary(100, 256); got != 120 {
		t.Errorf("boundary from 100 = %d, want 120", got)
	}
	if got := p.protBoundary(120, 256); got != 256 {
		t.Errorf("boundary from 120 = %d, want 256 (none)", got)
	}
	// Adjacent ranges with the SAME protection are not a boundary.
	if err := p.SetProtection(120, 20, ProtDefault); err != nil {
		t.Fatal(err)
	}
	if got := p.protBoundary(125, 256); got != 256 {
		t.Errorf("same-prot adjacency reported boundary at %d", got)
	}
}

// TestProtectionModelBased compares the range-list bookkeeping against a
// brute-force per-page map across random overlapping SetProtection calls.
func TestProtectionModelBased(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const span = 4096
	p := NewProcess(Policy{Anchors: true})
	if err := p.InstallChunks(mem.ChunkList{{StartVPN: 0, StartPFN: 1 << 20, Pages: span}}, 16); err != nil {
		t.Fatal(err)
	}
	ref := make(map[mem.VPN]Prot)
	prots := []Prot{ProtRead, ProtRead | ProtWrite, ProtRead | ProtExec, ProtRead | ProtWrite | ProtExec}
	for step := 0; step < 200; step++ {
		start := mem.VPN(r.Intn(span))
		pages := uint64(1 + r.Intn(256))
		if uint64(start)+pages > span {
			pages = span - uint64(start)
		}
		prot := prots[r.Intn(len(prots))]
		if err := p.SetProtection(start, pages, prot); err != nil {
			t.Fatal(err)
		}
		for v := start; v < start+mem.VPN(pages); v++ {
			ref[v] = prot
		}
		// Spot-check 64 random pages against the reference.
		for i := 0; i < 64; i++ {
			v := mem.VPN(r.Intn(span))
			want, ok := ref[v]
			if !ok {
				want = ProtDefault
			}
			if got := p.ProtectionAt(v); got != want {
				t.Fatalf("step %d: ProtectionAt(%d) = %v, want %v", step, v, got, want)
			}
		}
	}
	// Every anchor's coverage must stop at the first reference-model
	// protection change.
	pt := p.PageTable()
	for avpn := mem.VPN(0); avpn < span; avpn += 16 {
		c := pt.AnchorContiguity(avpn, 16)
		if c == 0 {
			continue
		}
		base := p.ProtectionAt(avpn)
		for off := mem.VPN(0); off < mem.VPN(c) && avpn+off < span; off++ {
			if p.ProtectionAt(avpn+off) != base {
				t.Fatalf("anchor %d (contig %d) covers protection change at +%d", avpn, c, off)
			}
		}
	}
}
