package osmem

import (
	"sort"

	"hybridtlb/internal/mem"
	"hybridtlb/internal/pagetable"
)

// This file implements the mapping-reorganization machinery Section 4 of
// the paper attributes to the OS: "The Linux kernel may try compacting
// memory as an effort to create more large pages for the process" and
// "Operating systems may also promote pages into a super page when
// sufficient reserved pages have been touched." Both change the process's
// contiguity histogram, which is exactly what the periodic distance
// re-selection reacts to.

// CompactResult reports one compaction pass.
type CompactResult struct {
	// ChunksBefore and ChunksAfter count physically contiguous chunks.
	ChunksBefore, ChunksAfter int
	// PagesMoved counts frames relocated.
	PagesMoved uint64
	// Reselect is the distance re-selection run after compaction.
	Reselect ReselectResult
}

// Compact relocates the process's frames so that virtually adjacent
// chunks become physically adjacent — the effect of Linux memory
// compaction from the process's point of view. targetPFN is where the
// defragmented image is placed (the compaction target zone); the caller
// guarantees the zone is free. Every moved page costs a TLB entry
// shootdown, anchors are rewritten, and the anchor distance is
// re-selected against the new histogram.
func (p *Process) Compact(targetPFN mem.PFN, costModel SweepCostModel) CompactResult {
	res := CompactResult{ChunksBefore: len(p.chunks)}
	if len(p.chunks) == 0 {
		res.ChunksAfter = 0
		return res
	}

	// Build the compacted chunk list: the same virtual layout, frames
	// packed back to back from targetPFN, preserving 2 MiB congruence by
	// aligning the target so the first chunk stays congruent.
	target := targetPFN.AlignDown(mem.PagesPer2M) + mem.PFN(uint64(p.chunks[0].StartVPN)%mem.PagesPer2M)
	var moved uint64
	var next mem.ChunkList
	for _, c := range p.chunks {
		if c.StartPFN != target {
			moved += c.Pages
			// Remap every page of the chunk; huge pages move wholesale.
			for off := uint64(0); off < c.Pages; off++ {
				v := c.StartVPN + mem.VPN(off)
				if p.IsHugeMapped(v) {
					base := v.AlignDown(mem.PagesPer2M)
					if base == v { // move the huge page once, at its base
						p.pt.Unmap(base)
						delete(p.huge, base)
						newPFN := target + mem.PFN(off)
						if err := p.pt.Map2M(base, newPFN, pagetable.FlagWrite|pagetable.FlagUser); err == nil {
							p.huge[base] = newPFN
						} else {
							// The compaction target broke 2 MiB
							// congruence (virtual holes): demote.
							for o := mem.VPN(0); o < mem.VPN(mem.PagesPer2M); o++ {
								p.pt.Map4K(base+o, newPFN+mem.PFN(o), p.ProtectionAt(base+o).flags())
							}
						}
						p.shootdown(base)
					}
					continue
				}
				p.pt.Map4K(v, target+mem.PFN(off), p.ProtectionAt(v).flags())
				p.shootdown(v)
			}
		}
		next = append(next, mem.Chunk{StartVPN: c.StartVPN, StartPFN: target, Pages: c.Pages})
		target += mem.PFN(c.Pages)
	}
	sort.Slice(next, func(i, j int) bool { return next[i].StartVPN < next[j].StartVPN })
	p.chunks = next.CoalesceVirtual()
	res.PagesMoved = moved
	res.ChunksAfter = len(p.chunks)

	// The contiguity histogram changed drastically: rewrite anchors and
	// re-run the selection (which sweeps and flushes if the distance
	// moves).
	if p.policy.Anchors {
		p.sweepAnchors()
		p.flushTLBs()
		res.Reselect = p.Reselect(costModel)
	}
	return res
}

// PromoteResult reports one promotion pass.
type PromoteResult struct {
	// Promoted counts new 2 MiB pages installed.
	Promoted int
}

// PromoteHugePages scans the mapping for 2 MiB-aligned, physically
// congruent, uniformly protected 4 KiB runs and promotes them to huge
// pages — the khugepaged behaviour the paper cites. Promoted regions stop
// carrying 4 KiB anchor runs (the anchor entry requires a 4 KiB PTE), so
// affected anchors are rewritten and shot down.
func (p *Process) PromoteHugePages() PromoteResult {
	var res PromoteResult
	if !p.policy.THP {
		return res
	}
	for _, c := range p.chunks {
		congruent := (uint64(c.StartVPN)-uint64(c.StartPFN))%mem.PagesPer2M == 0
		if !congruent {
			continue
		}
		start := c.StartVPN.AlignUp(mem.PagesPer2M)
		for base := start; base+mem.VPN(mem.PagesPer2M) <= c.EndVPN(); base += mem.VPN(mem.PagesPer2M) {
			if p.IsHugeMapped(base) {
				continue
			}
			if !p.uniformProt(base, mem.PagesPer2M) {
				continue
			}
			prot := p.ProtectionAt(base)
			pfn := c.Translate(base)
			if err := p.pt.Collapse2M(base, pfn, prot.flags()); err != nil {
				continue
			}
			p.huge[base] = pfn
			p.shootdown(base)
			res.Promoted++
		}
	}
	if res.Promoted > 0 && p.policy.Anchors {
		p.sweepAnchors()
		p.flushTLBs()
	}
	return res
}

// uniformProt reports whether [start, start+pages) carries one protection.
func (p *Process) uniformProt(start mem.VPN, pages uint64) bool {
	if len(p.prots) == 0 {
		return true
	}
	return p.protBoundary(start, start+mem.VPN(pages)) == start+mem.VPN(pages)
}
