package mapping

import (
	"fmt"

	"hybridtlb/internal/mem"
)

// This file builds whole process images: several VMAs (code, data, heap,
// mmap arena, stack) with different sizes and contiguity profiles,
// separated by unmapped guard gaps. Section 4.2 of the paper motivates
// the multi-region extension with exactly this structure: "an address
// space has different semantic memory regions: code, data, shared libs.,
// heap and stack. Different regions may have different contiguity."

// VMASpec describes one semantic region of a process image.
type VMASpec struct {
	// Name labels the region ("code", "heap", ...).
	Name string
	// Pages is the region size in 4 KiB pages.
	Pages uint64
	// Scenario is the contiguity profile of the region's backing.
	Scenario Scenario
	// FineGrained routes the buddy-backed scenarios through the
	// small-interleaved-allocations path.
	FineGrained bool
}

// PlacedVMA is a VMA at its final position in the image.
type PlacedVMA struct {
	VMASpec
	StartVPN mem.VPN
	EndVPN   mem.VPN
}

// ProcessImage is a complete multi-VMA mapping.
type ProcessImage struct {
	VMAs   []PlacedVMA
	Chunks mem.ChunkList
}

// FootprintPages returns the mapped page count (gaps excluded).
func (im ProcessImage) FootprintPages() uint64 { return im.Chunks.TotalPages() }

// VMAOf returns the VMA containing vpn, if any.
func (im ProcessImage) VMAOf(vpn mem.VPN) (PlacedVMA, bool) {
	for _, v := range im.VMAs {
		if vpn >= v.StartVPN && vpn < v.EndVPN {
			return v, true
		}
	}
	return PlacedVMA{}, false
}

// guardPages separates consecutive VMAs (an unmapped gap, like the guard
// regions real address spaces keep between mappings).
const guardPages = 512

// vmaPhysStride separates the synthetic physical regions backing each
// VMA so their frames can never collide; it is 2 MiB-aligned to preserve
// huge-page congruence.
const vmaPhysStride = uint64(1) << 36

// GenerateImage lays the VMAs out from cfg.BaseVPN upward with guard gaps
// and generates each VMA's chunks with its own contiguity scenario.
// cfg.FootprintPages is ignored (the specs define sizes); cfg.Seed and
// cfg.Pressure apply to every VMA.
func GenerateImage(specs []VMASpec, cfg Config) (ProcessImage, error) {
	if len(specs) == 0 {
		return ProcessImage{}, fmt.Errorf("mapping: empty image")
	}
	base := cfg.BaseVPN
	if base == 0 {
		base = DefaultBaseVPN
	}
	base = base.AlignUp(mem.PagesPer2M)

	var im ProcessImage
	cursor := base
	for i, spec := range specs {
		if spec.Pages == 0 {
			return ProcessImage{}, fmt.Errorf("mapping: empty VMA %q", spec.Name)
		}
		vcfg := cfg
		vcfg.BaseVPN = cursor
		vcfg.FootprintPages = spec.Pages
		vcfg.Seed = cfg.Seed + int64(i)*7919
		vcfg.FineGrained = spec.FineGrained
		vcfg.PhysFrames = 0 // per-VMA default sizing
		cl, err := Generate(spec.Scenario, vcfg)
		if err != nil {
			return ProcessImage{}, fmt.Errorf("mapping: VMA %q: %w", spec.Name, err)
		}
		// Relocate the VMA's frames into its own physical stripe so VMAs
		// never share frames.
		stripe := mem.PFN(uint64(i+1) * vmaPhysStride)
		for j := range cl {
			cl[j].StartPFN += stripe
		}
		start := cl[0].StartVPN
		im.VMAs = append(im.VMAs, PlacedVMA{
			VMASpec:  spec,
			StartVPN: start,
			EndVPN:   start + mem.VPN(spec.Pages),
		})
		im.Chunks = append(im.Chunks, cl...)
		cursor = (start + mem.VPN(spec.Pages) + guardPages).AlignUp(mem.PagesPer2M)
	}
	im.Chunks.Sort()
	if err := im.Chunks.Validate(); err != nil {
		return ProcessImage{}, fmt.Errorf("mapping: image generator bug: %w", err)
	}
	return im, nil
}

// DefaultImage returns a representative process layout: a small
// fine-grained code region, a medium-contiguity data segment, a large
// demand-paged heap, a high-contiguity mmap arena, and a small stack.
// heapPages scales the image (the other regions keep realistic fixed
// sizes).
func DefaultImage(heapPages uint64) []VMASpec {
	return []VMASpec{
		{Name: "code", Pages: 1024, Scenario: Low, FineGrained: false},
		{Name: "data", Pages: 4096, Scenario: Medium},
		{Name: "heap", Pages: heapPages, Scenario: Demand},
		{Name: "mmap", Pages: heapPages / 4, Scenario: High},
		{Name: "stack", Pages: 256, Scenario: Low},
	}
}
