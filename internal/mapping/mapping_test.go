package mapping

import (
	"testing"

	"hybridtlb/internal/mem"
)

func testConfig(footprint uint64, pressure float64) Config {
	return Config{FootprintPages: footprint, Seed: 1, Pressure: pressure}
}

func TestScenarioNamesRoundTrip(t *testing.T) {
	for _, s := range All() {
		got, err := ParseScenario(s.String())
		if err != nil || got != s {
			t.Errorf("round trip of %v failed: %v, %v", s, got, err)
		}
	}
	if _, err := ParseScenario("bogus"); err == nil {
		t.Error("bogus scenario parsed")
	}
	if Scenario(99).String() == "" {
		t.Error("unknown scenario name empty")
	}
}

func TestChunkRanges(t *testing.T) {
	// Table 4 exactly.
	cases := []struct {
		s      Scenario
		lo, hi uint64
	}{{Low, 1, 16}, {Medium, 1, 512}, {High, 512, 65536}}
	for _, c := range cases {
		lo, hi := c.s.ChunkRange()
		if lo != c.lo || hi != c.hi {
			t.Errorf("%v range = [%d,%d], want [%d,%d]", c.s, lo, hi, c.lo, c.hi)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ChunkRange on demand did not panic")
		}
	}()
	Demand.ChunkRange()
}

// TestTable4 verifies each synthetic scenario produces chunk sizes within
// its Table 4 range (except the final remainder chunk).
func TestTable4(t *testing.T) {
	for _, s := range []Scenario{Low, Medium, High} {
		lo, hi := s.ChunkRange()
		cl, err := Generate(s, testConfig(1<<18, 0))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		for i, c := range cl {
			last := i == len(cl)-1
			if c.Pages > hi || (!last && c.Pages < lo) {
				t.Errorf("%v: chunk %d has %d pages, outside [%d,%d]", s, i, c.Pages, lo, hi)
			}
		}
	}
}

func TestGenerateInvariants(t *testing.T) {
	for _, s := range All() {
		for _, pressure := range []float64{0, 0.5} {
			cl, err := Generate(s, testConfig(1<<16, pressure))
			if err != nil {
				t.Fatalf("%v p=%v: %v", s, pressure, err)
			}
			if err := cl.Validate(); err != nil {
				t.Fatalf("%v p=%v: %v", s, pressure, err)
			}
			if got := cl.TotalPages(); got != 1<<16 {
				t.Errorf("%v p=%v: %d pages, want %d", s, pressure, got, 1<<16)
			}
			// No virtual holes: chunks must be back to back.
			for i := 1; i < len(cl); i++ {
				if cl[i].StartVPN != cl[i-1].EndVPN() {
					t.Errorf("%v p=%v: virtual hole between chunk %d and %d", s, pressure, i-1, i)
				}
			}
			// No physical overlap between chunks.
			seen := make(map[mem.PFN]bool)
			for _, c := range cl {
				for p := c.StartPFN; p < c.EndPFN(); p += 97 {
					if seen[p] {
						t.Fatalf("%v p=%v: physical frame %#x mapped twice", s, pressure, uint64(p))
					}
					seen[p] = true
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, s := range All() {
		a, err := Generate(s, testConfig(1<<15, 0.3))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(s, testConfig(1<<15, 0.3))
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%v: nondeterministic chunk count", s)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: nondeterministic chunk %d", s, i)
			}
		}
		c, err := Generate(s, Config{FootprintPages: 1 << 15, Seed: 2, Pressure: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		if s != Max && len(c) == len(a) && chunksEqual(a, c) {
			t.Errorf("%v: different seeds gave identical mappings", s)
		}
	}
}

func chunksEqual(a, b mem.ChunkList) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMaxScenarioIsOneChunk(t *testing.T) {
	cl, err := Generate(Max, testConfig(1<<16, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(cl) != 1 || cl[0].Pages != 1<<16 {
		t.Fatalf("max mapping = %v", cl)
	}
}

func TestSyntheticCongruence(t *testing.T) {
	// Every synthetic chunk must be 2 MiB-congruent so THP promotion is
	// possible exactly where alignment allows.
	for _, s := range []Scenario{Low, Medium, High} {
		cl, err := Generate(s, testConfig(1<<17, 0))
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cl {
			if (uint64(c.StartVPN)-uint64(c.StartPFN))%mem.PagesPer2M != 0 {
				t.Fatalf("%v: chunk %d not 2MiB-congruent: %v", s, i, c)
			}
		}
	}
}

func TestContiguityOrdering(t *testing.T) {
	// Mean chunk size must increase low < medium < high <= max, and eager
	// on a pristine machine must beat demand under heavy pressure.
	mean := func(s Scenario, pressure float64) float64 {
		cl, err := Generate(s, testConfig(1<<17, pressure))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		return float64(cl.TotalPages()) / float64(len(cl))
	}
	low, med, high, max := mean(Low, 0), mean(Medium, 0), mean(High, 0), mean(Max, 0)
	if !(low < med && med < high && high <= max) {
		t.Errorf("contiguity ordering violated: low=%.0f med=%.0f high=%.0f max=%.0f", low, med, high, max)
	}
	eagerPristine := mean(Eager, 0)
	demandPressured := mean(Demand, 0.9)
	if eagerPristine <= demandPressured {
		t.Errorf("eager on pristine (%.0f) should beat demand under pressure (%.0f)", eagerPristine, demandPressured)
	}
}

func TestPressureReducesContiguity(t *testing.T) {
	for _, s := range []Scenario{Demand, Eager} {
		calm, err := Generate(s, testConfig(1<<17, 0))
		if err != nil {
			t.Fatal(err)
		}
		pressured, err := Generate(s, Config{FootprintPages: 1 << 17, Seed: 1, Pressure: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		if len(pressured) <= len(calm) {
			t.Errorf("%v: pressure did not fragment mapping (%d chunks calm, %d pressured)", s, len(calm), len(pressured))
		}
	}
}

func TestDemandProducesHugeChunksWhenCalm(t *testing.T) {
	cl, err := Generate(Demand, testConfig(1<<17, 0))
	if err != nil {
		t.Fatal(err)
	}
	// On a pristine machine every 2 MiB unit gets an order-9 block and
	// adjacent blocks coalesce: expect very few chunks.
	if len(cl) > 8 {
		t.Errorf("pristine demand mapping has %d chunks; expected near-perfect contiguity", len(cl))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Generate(Low, Config{}); err == nil {
		t.Error("zero footprint accepted")
	}
	if _, err := Generate(Low, Config{FootprintPages: 100, Pressure: 1.5}); err == nil {
		t.Error("pressure > 1 accepted")
	}
	if _, err := Generate(Demand, Config{FootprintPages: 1 << 16, PhysFrames: 1 << 16}); err == nil {
		t.Error("physical memory equal to footprint accepted (no headroom)")
	}
	if _, err := Generate(Scenario(42), testConfig(100, 0)); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestBaseVPNDefaultsAndAlignment(t *testing.T) {
	cl, err := Generate(Low, testConfig(1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if cl[0].StartVPN != DefaultBaseVPN {
		t.Errorf("base = %#x, want %#x", uint64(cl[0].StartVPN), uint64(DefaultBaseVPN))
	}
	cl, err = Generate(Low, Config{FootprintPages: 1000, BaseVPN: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !cl[0].StartVPN.IsAligned(mem.PagesPer2M) {
		t.Error("base not aligned up to 2MiB")
	}
}

func TestFigure1ShapeCDFVariesWithPressure(t *testing.T) {
	// Figure 1's observation: contiguity distributions vary widely with
	// background pressure. The fraction of pages in chunks <= 16 pages
	// must grow monotonically-ish with pressure.
	fracSmall := func(p float64) float64 {
		cl, err := Generate(Demand, Config{FootprintPages: 1 << 16, Seed: 3, Pressure: p})
		if err != nil {
			t.Fatal(err)
		}
		var small, total uint64
		for _, c := range cl {
			total += c.Pages
			if c.Pages <= 16 {
				small += c.Pages
			}
		}
		return float64(small) / float64(total)
	}
	f0, f9 := fracSmall(0), fracSmall(0.9)
	if f9 <= f0 {
		t.Errorf("small-chunk fraction: pressure 0 -> %.3f, pressure 0.9 -> %.3f; want increase", f0, f9)
	}
}

func BenchmarkGenerateDemand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Demand, Config{FootprintPages: 1 << 16, Seed: int64(i), Pressure: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}
