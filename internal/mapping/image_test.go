package mapping

import (
	"testing"

	"hybridtlb/internal/mem"
)

func TestGenerateImageLayout(t *testing.T) {
	specs := DefaultImage(1 << 15)
	im, err := GenerateImage(specs, Config{Seed: 3, Pressure: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(im.VMAs) != len(specs) {
		t.Fatalf("VMAs = %d", len(im.VMAs))
	}
	var want uint64
	for _, s := range specs {
		want += s.Pages
	}
	if got := im.FootprintPages(); got != want {
		t.Errorf("footprint = %d, want %d", got, want)
	}
	// VMAs are ordered, gap-separated, and sized as specified.
	for i, v := range im.VMAs {
		if uint64(v.EndVPN-v.StartVPN) != specs[i].Pages {
			t.Errorf("VMA %s size wrong", v.Name)
		}
		if i > 0 && v.StartVPN < im.VMAs[i-1].EndVPN+guardPages {
			t.Errorf("VMA %s missing guard gap", v.Name)
		}
	}
	// Lookup works and the gaps are unmapped.
	if v, ok := im.VMAOf(im.VMAs[2].StartVPN + 5); !ok || v.Name != "heap" {
		t.Errorf("VMAOf(heap+5) = %+v, %v", v, ok)
	}
	if _, ok := im.VMAOf(im.VMAs[0].EndVPN + 1); ok {
		t.Error("guard gap reported mapped")
	}
	if _, ok := im.Chunks.Lookup(im.VMAs[0].EndVPN + 1); ok {
		t.Error("chunk in guard gap")
	}
}

func TestGenerateImagePhysicalIsolation(t *testing.T) {
	im, err := GenerateImage(DefaultImage(1<<14), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Frames of different VMAs live in disjoint stripes.
	stripeOf := func(p mem.PFN) uint64 { return uint64(p) / vmaPhysStride }
	stripes := make(map[string]uint64)
	for _, v := range im.VMAs {
		c, ok := im.Chunks.Lookup(v.StartVPN)
		if !ok {
			t.Fatalf("VMA %s start unmapped", v.Name)
		}
		stripes[v.Name] = stripeOf(c.StartPFN)
	}
	seen := make(map[uint64]string)
	for name, s := range stripes {
		if prev, dup := seen[s]; dup {
			t.Errorf("VMAs %s and %s share physical stripe %d", name, prev, s)
		}
		seen[s] = name
	}
}

func TestGenerateImageContiguityPerVMA(t *testing.T) {
	im, err := GenerateImage(DefaultImage(1<<15), Config{Seed: 9, Pressure: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Mean chunk size per VMA must reflect each scenario: code (low) far
	// below mmap (high).
	meanChunk := func(name string) float64 {
		var pages, chunks uint64
		for _, v := range im.VMAs {
			if v.Name != name {
				continue
			}
			for _, c := range im.Chunks {
				if c.StartVPN >= v.StartVPN && c.StartVPN < v.EndVPN {
					pages += c.Pages
					chunks++
				}
			}
		}
		return float64(pages) / float64(chunks)
	}
	code, mm := meanChunk("code"), meanChunk("mmap")
	if code*10 > mm {
		t.Errorf("code mean chunk %.1f not far below mmap %.1f", code, mm)
	}
}

func TestGenerateImageValidation(t *testing.T) {
	if _, err := GenerateImage(nil, Config{Seed: 1}); err == nil {
		t.Error("empty image accepted")
	}
	if _, err := GenerateImage([]VMASpec{{Name: "x", Pages: 0, Scenario: Low}}, Config{Seed: 1}); err == nil {
		t.Error("empty VMA accepted")
	}
}

func TestGenerateImageDeterministic(t *testing.T) {
	a, err := GenerateImage(DefaultImage(1<<13), Config{Seed: 4, Pressure: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateImage(DefaultImage(1<<13), Config{Seed: 4, Pressure: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Chunks) != len(b.Chunks) {
		t.Fatal("nondeterministic image")
	}
	for i := range a.Chunks {
		if a.Chunks[i] != b.Chunks[i] {
			t.Fatalf("chunk %d differs", i)
		}
	}
}
