// Package mapping generates the virtual-to-physical mapping scenarios the
// paper evaluates (Section 5.1): two "real" mappings produced by a
// buddy-allocator model of Linux demand paging (with THP) and eager
// paging, and the four synthetic mappings of Table 4 (low / medium / high
// / max contiguity) whose chunk sizes are drawn uniformly from fixed
// ranges.
//
// A mapping is a mem.ChunkList: the process's virtual footprint is covered
// back-to-back (no virtual holes, like a heap), and contiguity lives
// entirely in how large the physically contiguous chunks are. All
// generators keep chunks 2 MiB-congruent (the virtual-to-physical offset
// is a multiple of 512 pages) whenever the underlying allocation would be,
// so that transparent huge pages remain possible exactly when they should
// be.
package mapping

import (
	"fmt"
	"math/rand"

	"hybridtlb/internal/mem"
)

// Scenario identifies one of the six mapping scenarios.
type Scenario int

// The mapping scenarios of Section 5.1.
const (
	// Demand models Linux demand paging with THP: physical memory is
	// faulted in 2 MiB units (falling back to scattered 4 KiB pages when
	// the buddy allocator cannot supply an order-9 block), interleaved
	// with background allocation churn.
	Demand Scenario = iota
	// Eager models eager paging: the whole footprint is allocated
	// up-front, page by page through the buddy allocator, so contiguity
	// mirrors the allocator's free-block structure.
	Eager
	// Low is Table 4's "low contiguity": chunks of 1-16 pages.
	Low
	// Medium is Table 4's "medium contiguity": chunks of 1-512 pages.
	Medium
	// High is Table 4's "high contiguity": chunks of 512-65536 pages.
	High
	// Max is Table 4's "max contiguity": every virtually contiguous
	// region maps to one physically contiguous region.
	Max
	numScenarios
)

// String returns the scenario's name as used by the paper's figures.
func (s Scenario) String() string {
	switch s {
	case Demand:
		return "demand"
	case Eager:
		return "eager"
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// ParseScenario resolves a scenario name.
func ParseScenario(name string) (Scenario, error) {
	for s := Demand; s < numScenarios; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("mapping: unknown scenario %q", name)
}

// All returns the six scenarios in the paper's presentation order.
func All() []Scenario {
	return []Scenario{Demand, Eager, Low, Medium, High, Max}
}

// Synthetic reports whether the scenario is one of Table 4's synthetic
// mappings.
func (s Scenario) Synthetic() bool { return s >= Low }

// ChunkRange returns the chunk size range (in pages) of a synthetic
// scenario, as listed in Table 4. It panics for non-synthetic scenarios.
func (s Scenario) ChunkRange() (lo, hi uint64) {
	switch s {
	case Low:
		return 1, 16
	case Medium:
		return 1, 512
	case High:
		return 512, 65536
	default:
		panic("mapping: ChunkRange on non-synthetic scenario " + s.String())
	}
}

// Config parameterizes mapping generation.
type Config struct {
	// FootprintPages is the process footprint in 4 KiB pages.
	FootprintPages uint64
	// BaseVPN is the first virtual page of the footprint; it is aligned
	// up to 512 pages so huge-page congruence is meaningful. Zero means
	// the conventional heap base used throughout the repository.
	BaseVPN mem.VPN
	// Seed makes generation deterministic.
	Seed int64
	// PhysFrames sizes the physical memory for the buddy-backed
	// scenarios. Zero means 2x the footprint.
	PhysFrames uint64
	// Pressure in [0,1] is the background fragmentation level for the
	// buddy-backed scenarios: 0 is a pristine machine, 1 churns and
	// holds as much of the non-footprint memory as possible.
	Pressure float64
	// FineGrained models a process that builds its footprint from many
	// small interleaved allocations (omnetpp- or xalancbmk-like): the
	// buddy-backed scenarios then produce fine-grained chunks no matter
	// how pristine the machine is, and THP never applies.
	FineGrained bool
}

// DefaultBaseVPN is the heap base used when Config.BaseVPN is zero
// (0x10000000 bytes >> 12).
const DefaultBaseVPN mem.VPN = 0x10000

func (c Config) withDefaults() (Config, error) {
	if c.FootprintPages == 0 {
		return c, fmt.Errorf("mapping: zero footprint")
	}
	if c.BaseVPN == 0 {
		c.BaseVPN = DefaultBaseVPN
	}
	c.BaseVPN = c.BaseVPN.AlignUp(mem.PagesPer2M)
	if c.PhysFrames == 0 {
		c.PhysFrames = 2 * c.FootprintPages
	}
	if c.PhysFrames < c.FootprintPages+c.FootprintPages/8 {
		return c, fmt.Errorf("mapping: %d physical frames cannot comfortably back a %d-page footprint", c.PhysFrames, c.FootprintPages)
	}
	if c.Pressure < 0 || c.Pressure > 1 {
		return c, fmt.Errorf("mapping: pressure %v outside [0,1]", c.Pressure)
	}
	return c, nil
}

// Generate produces the chunk list for a scenario. The result is sorted,
// coalesced, covers exactly [BaseVPN, BaseVPN+FootprintPages) with no
// virtual holes, and is deterministic for a given (scenario, config).
func Generate(s Scenario, cfg Config) (mem.ChunkList, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed ^ int64(s)<<32))
	var cl mem.ChunkList
	switch s {
	case Demand:
		cl, err = demand(cfg, r)
	case Eager:
		cl, err = eager(cfg, r)
	case Low, Medium, High:
		lo, hi := s.ChunkRange()
		cl = synthetic(cfg, r, lo, hi)
	case Max:
		cl = mem.ChunkList{{StartVPN: cfg.BaseVPN, StartPFN: mem.PFN(cfg.BaseVPN), Pages: cfg.FootprintPages}}
	default:
		return nil, fmt.Errorf("mapping: unknown scenario %d", int(s))
	}
	if err != nil {
		return nil, err
	}
	cl.Sort()
	cl = cl.CoalesceVirtual()
	if err := cl.Validate(); err != nil {
		return nil, fmt.Errorf("mapping: generator bug: %w", err)
	}
	if got := cl.TotalPages(); got != cfg.FootprintPages {
		return nil, fmt.Errorf("mapping: generator bug: covered %d pages, want %d", got, cfg.FootprintPages)
	}
	return cl, nil
}

// synthetic lays chunks with sizes uniform in [lo, hi] back-to-back in
// virtual space. Physical placement is sequential with random 2 MiB-
// aligned gaps, preserving huge-page congruence for every chunk while
// guaranteeing physical discontiguity between chunks.
func synthetic(cfg Config, r *rand.Rand, lo, hi uint64) mem.ChunkList {
	var cl mem.ChunkList
	vpn := cfg.BaseVPN
	end := cfg.BaseVPN + mem.VPN(cfg.FootprintPages)
	physCursor := mem.PFN(mem.PagesPer2M) // 512-aligned throughout
	for vpn < end {
		pages := lo + uint64(r.Int63n(int64(hi-lo+1)))
		if max := uint64(end - vpn); pages > max {
			pages = max
		}
		// Congruent placement: pfn mod 512 == vpn mod 512.
		pfn := physCursor + mem.PFN(uint64(vpn)%mem.PagesPer2M)
		cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: pfn, Pages: pages})
		vpn += mem.VPN(pages)
		// Advance past this chunk plus a gap of 1-8 huge-page units so
		// neighbouring chunks are never physically adjacent.
		physCursor = (pfn + mem.PFN(pages)).AlignDown(mem.PagesPer2M) +
			mem.PFN(mem.PagesPer2M*uint64(1+r.Intn(8))+mem.PagesPer2M)
	}
	return cl
}
