package mapping

import (
	"fmt"
	"math/rand"

	"hybridtlb/internal/buddy"
	"hybridtlb/internal/mem"
)

// This file models the two "real mapping" scenarios of Section 5.1 on top
// of the buddy allocator: demand paging with transparent huge pages, and
// eager paging. Background allocation pressure (the paper's "randomly
// executing background jobs" from PARSEC) fragments physical memory so
// that the contiguity handed to the process varies with system state,
// reproducing the diversity shown in Figure 1.

// backgroundJobs churns the allocator: it allocates small random-order
// blocks until roughly `hold` frames are live, freeing every other block
// along the way so the free space is checkerboarded rather than compact.
// It returns the live blocks so demand paging can continue churning
// between faults.
type backgroundJobs struct {
	r     *rand.Rand
	alloc *buddy.Allocator
	live  []bgBlock
	hold  uint64
	held  uint64
}

type bgBlock struct {
	pfn   mem.PFN
	order int
}

func newBackgroundJobs(a *buddy.Allocator, r *rand.Rand, pressure float64, reserve uint64) *backgroundJobs {
	b := &backgroundJobs{r: r, alloc: a}
	if pressure <= 0 || reserve == 0 {
		return b
	}
	b.hold = uint64(pressure * float64(reserve))
	// Background jobs churn an amount of memory proportional to the
	// pressure: they allocate about twice the hold volume in small
	// blocks, then release random ones until only the hold volume
	// remains. The churned region ends up checkerboarded with scattered
	// survivors, while the untouched remainder of memory keeps its large
	// free blocks — so huge-page allocations succeed until the pristine
	// region runs out, exactly the partial-THP mappings the paper's
	// demand-paging snapshots show.
	churn := 2 * b.hold
	if cap := a.Frames() - a.Frames()/16; churn > cap {
		churn = cap
	}
	for b.held < churn {
		// A wide block-size spectrum (4 KiB .. 2 MiB) leaves holes of
		// correspondingly varied sizes after the free phase, producing
		// the smooth chunk-size CDFs of Figure 1 rather than a bimodal
		// tiny-or-huge split.
		order := b.r.Intn(10)
		pfn, err := b.alloc.Alloc(order)
		if err != nil {
			break
		}
		b.live = append(b.live, bgBlock{pfn, order})
		b.held += 1 << order
	}
	for b.held > b.hold && len(b.live) > 0 {
		i := b.r.Intn(len(b.live))
		blk := b.live[i]
		if err := b.alloc.Free(blk.pfn, blk.order); err == nil {
			b.held -= 1 << blk.order
		}
		b.live[i] = b.live[len(b.live)-1]
		b.live = b.live[:len(b.live)-1]
	}
	return b
}

// step performs one background allocation or release, biased to keep the
// held volume near the target.
func (b *backgroundJobs) step() {
	wantAlloc := b.held < b.hold
	if len(b.live) > 0 && (!wantAlloc || b.r.Intn(3) == 0) {
		i := b.r.Intn(len(b.live))
		blk := b.live[i]
		if err := b.alloc.Free(blk.pfn, blk.order); err == nil {
			b.held -= 1 << blk.order
		}
		b.live[i] = b.live[len(b.live)-1]
		b.live = b.live[:len(b.live)-1]
		return
	}
	if !wantAlloc {
		return
	}
	// Background jobs mostly use small allocations, with the occasional
	// large buffer (as real co-runners do) — those bites into the
	// pristine region are what make two runs under the same pressure
	// receive different mappings (the diversity of Figure 1).
	order := b.r.Intn(5)
	if b.r.Intn(8) == 0 {
		order = 5 + b.r.Intn(5)
	}
	pfn, err := b.alloc.Alloc(order)
	if err != nil {
		return
	}
	b.live = append(b.live, bgBlock{pfn, order})
	b.held += 1 << order
}

// demand simulates demand paging with THP: virtual memory is faulted in
// 2 MiB units in touch order (virtual order); each unit tries an order-9
// buddy allocation and falls back to individual 4 KiB pages when the
// allocator is too fragmented. Background churn interleaves with faults,
// so consecutive units rarely receive adjacent blocks under pressure.
func demand(cfg Config, r *rand.Rand) (mem.ChunkList, error) {
	alloc := buddy.New(cfg.PhysFrames)
	bg := newBackgroundJobs(alloc, r, cfg.Pressure, cfg.PhysFrames-cfg.FootprintPages)
	if cfg.FineGrained {
		return fineGrained(cfg, r, alloc, bg)
	}

	var cl mem.ChunkList
	vpn := cfg.BaseVPN
	end := cfg.BaseVPN + mem.VPN(cfg.FootprintPages)
	for vpn < end {
		// Interleaved background activity between faults (sparse: the
		// process allocates in a burst at startup, so co-runners only
		// occasionally interpose).
		if r.Float64() < cfg.Pressure*0.1 {
			bg.step()
		}
		unit := uint64(mem.PagesPer2M)
		if rem := uint64(end - vpn); rem < unit {
			unit = rem
		}
		// THP declines some faults even when order-9 blocks exist — small
		// VMAs, allocation-stall avoidance, khugepaged lag — and declines
		// more often on a loaded machine. Declined units fault 4 KiB
		// pages from the fragmented holes, producing the small-chunk mass
		// of Figure 1's CDFs.
		thpDeclined := r.Float64() < 0.005+0.05*cfg.Pressure
		if unit == mem.PagesPer2M && vpn.IsAligned(mem.PagesPer2M) && !thpDeclined {
			if pfn, err := alloc.Alloc(9); err == nil {
				cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: pfn, Pages: unit})
				vpn += mem.VPN(unit)
				continue
			}
		}
		// Fragmented fallback: fault 4 KiB pages one at a time.
		for i := uint64(0); i < unit; i++ {
			pfn, err := alloc.Alloc(0)
			if err != nil {
				return nil, fmt.Errorf("mapping: demand paging out of memory at %d/%d pages", uint64(vpn-cfg.BaseVPN)+i, cfg.FootprintPages)
			}
			cl = append(cl, mem.Chunk{StartVPN: vpn + mem.VPN(i), StartPFN: pfn, Pages: 1})
		}
		vpn += mem.VPN(unit)
	}
	return cl, nil
}

// eager simulates eager paging: the entire footprint is allocated in one
// burst at process start (the paper's kernel "requests pages through the
// buddy allocator system sequentially" at mmap time), with no background
// churn interleaved into the burst. 2 MiB-aligned VA units take whole
// order-9 blocks when the allocator has them — the contiguity khugepaged
// would recover anyway — and the remainder faults page by page through
// the fragmented holes. The result is strictly more contiguous than the
// same machine's demand mapping, as the paper observes.
func eager(cfg Config, r *rand.Rand) (mem.ChunkList, error) {
	alloc := buddy.New(cfg.PhysFrames)
	bg := newBackgroundJobs(alloc, r, cfg.Pressure, cfg.PhysFrames-cfg.FootprintPages)
	if cfg.FineGrained {
		// A process that allocates its memory in many small interleaved
		// requests gets fine-grained contiguity even when pre-faulted:
		// the allocations themselves arrive over time, not in one burst.
		return fineGrained(cfg, r, alloc, bg)
	}

	var cl mem.ChunkList
	vpn := cfg.BaseVPN
	end := cfg.BaseVPN + mem.VPN(cfg.FootprintPages)
	for vpn < end {
		unit := uint64(mem.PagesPer2M)
		if rem := uint64(end - vpn); rem < unit {
			unit = rem
		}
		if unit == mem.PagesPer2M && vpn.IsAligned(mem.PagesPer2M) {
			if pfn, err := alloc.Alloc(9); err == nil {
				cl = append(cl, mem.Chunk{StartVPN: vpn, StartPFN: pfn, Pages: unit})
				vpn += mem.VPN(unit)
				continue
			}
		}
		for i := uint64(0); i < unit; i++ {
			pfn, err := alloc.Alloc(0)
			if err != nil {
				return nil, fmt.Errorf("mapping: eager paging out of memory at page %d/%d", uint64(vpn-cfg.BaseVPN)+i, cfg.FootprintPages)
			}
			cl = append(cl, mem.Chunk{StartVPN: vpn + mem.VPN(i), StartPFN: pfn, Pages: 1})
		}
		vpn += mem.VPN(unit)
	}
	return cl, nil
}

// fineGrained models omnetpp/xalancbmk-style allocation: the footprint is
// faulted one page at a time, and every dozen or so pages the process's
// own transient allocations (or a co-runner) claim an unrelated block,
// moving the allocator's cursor — so physically contiguous runs stay
// short regardless of machine pressure. THP never applies: the backing
// VMAs are smaller than 2 MiB.
func fineGrained(cfg Config, r *rand.Rand, alloc *buddy.Allocator, bg *backgroundJobs) (mem.ChunkList, error) {
	var cl mem.ChunkList
	// Transient blocks the process itself holds briefly between frees.
	type tblock struct {
		pfn   mem.PFN
		order int
	}
	var transient []tblock
	for i := uint64(0); i < cfg.FootprintPages; i++ {
		if r.Intn(12) == 0 {
			// A small unrelated allocation interposes, breaking the run.
			order := r.Intn(3)
			if pfn, err := alloc.Alloc(order); err == nil {
				transient = append(transient, tblock{pfn, order})
			}
			// Occasionally release an old transient block, leaving a
			// hole for later runs to land in.
			if len(transient) > 8 {
				j := r.Intn(len(transient))
				_ = alloc.Free(transient[j].pfn, transient[j].order)
				transient[j] = transient[len(transient)-1]
				transient = transient[:len(transient)-1]
			}
			bg.step()
		}
		pfn, err := alloc.Alloc(0)
		if err != nil {
			return nil, fmt.Errorf("mapping: fine-grained paging out of memory at page %d/%d", i, cfg.FootprintPages)
		}
		cl = append(cl, mem.Chunk{StartVPN: cfg.BaseVPN + mem.VPN(i), StartPFN: pfn, Pages: 1})
	}
	return cl, nil
}
