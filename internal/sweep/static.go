package sweep

import (
	"context"

	"hybridtlb/internal/sim"
)

// StaticIdeal evaluates the paper's static-ideal configuration — every
// candidate anchor distance with dynamic selection disabled — through
// the engine, so the sixteen distance probes run concurrently and
// repeated probes (the same cell appearing in several figures) are
// served from the result cache. It returns the best run (fewest misses,
// earliest distance on ties) and every per-distance result, matching
// sim.RunStaticIdeal bit for bit.
func StaticIdeal(ctx context.Context, e *Engine, cfg sim.Config) (sim.Result, []sim.Result, error) {
	cfgs, err := sim.StaticIdealConfigs(cfg)
	if err != nil {
		return sim.Result{}, nil, err
	}
	jobs := make([]Job, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = Job{Config: c}
	}
	results, err := e.Run(ctx, jobs)
	if err != nil {
		return sim.Result{}, nil, err
	}
	all := Results(results)
	return sim.BestStaticIdeal(all), all, nil
}
