// Package sweep is the concurrent experiment-orchestration engine: it
// expands declarative sweep specifications (schemes × workloads ×
// scenarios × seeds × pressures × anchor distances) into job lists,
// executes the jobs on a bounded worker pool, memoizes results in a
// content-addressed cache so repeated cells (the same baseline across
// figures, static-ideal's sixteen distance probes) are simulated once per
// process, and returns results in deterministic spec order regardless of
// completion order. Every figure and table generator in internal/report
// and the public hybridtlb.SimulateSweep API route through it.
//
// Jobs are pure: each simulation owns its RNG, seeded from the spec, so a
// parallel sweep is bit-identical to the serial one.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"hybridtlb/internal/sim"
)

// Job is one unit of sweep work: a full simulation configuration, plus
// optional churn parameters that switch execution from sim.Run to
// sim.RunWithChurn. The zero churn fields mean a plain run.
type Job struct {
	Config sim.Config

	// ChurnIntervalInstructions and ChurnPages, when both non-zero, run
	// the job under mapping churn (sim.RunWithChurn).
	ChurnIntervalInstructions uint64
	ChurnPages                uint64
}

// String identifies the job in errors and progress lines.
func (j Job) String() string {
	c := j.Config
	s := fmt.Sprintf("%v/%s/%v seed=%d", c.Scheme, c.Workload.Name, c.Scenario, c.Seed)
	if c.FixedDistance != 0 {
		s += fmt.Sprintf(" d=%d", c.FixedDistance)
	}
	if j.ChurnIntervalInstructions != 0 || j.ChurnPages != 0 {
		s += " churn"
	}
	return s
}

// Key returns the job's content-addressed cache key: a SHA-256 over a
// canonical serialization of the defaulted configuration. Two jobs with
// the same key compute the same result, so the engine runs only one of
// them.
//
// The workload is identified by its public parameters (Name, footprint,
// instruction spacing, write fraction, allocator behaviour) — the access
// pattern itself is keyed by Name, which uniquely names a generator in
// the registered suite. Callers substituting a custom workload.Spec must
// give it a distinct Name.
func (j Job) Key() string {
	c := j.Config.WithDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "scheme=%d|wl=%s/%d/%d/%g/%t|sc=%d|",
		c.Scheme, c.Workload.Name, c.Workload.FootprintPages,
		c.Workload.MeanInstrsPerAccess, c.Workload.WriteFraction,
		c.Workload.FineGrainedAlloc, c.Scenario)
	hw := c.HW
	detailed := hw.Walk != nil
	hw.Walk = nil
	fmt.Fprintf(h, "hw=%+v|hwwalk=%t|", hw, detailed)
	fmt.Fprintf(h, "fp=%d|acc=%d|warm=%d|seed=%d|press=%g|dist=%d|epoch=%d|sweep=%+v|cost=%d|multi=%t|det=%t|",
		c.FootprintPages, c.Accesses, c.WarmupAccesses, c.Seed, c.Pressure,
		c.FixedDistance, c.EpochInstructions, c.SweepCost, c.CostModel,
		c.MultiRegionAnchors, c.DetailedWalk)
	fmt.Fprintf(h, "churn=%d/%d", j.ChurnIntervalInstructions, j.ChurnPages)
	return hex.EncodeToString(h.Sum(nil))
}

// Result pairs one job with its outcome. Exactly one of Res/Err is
// meaningful; Churn is populated only for churn jobs.
type Result struct {
	Job   Job
	Res   sim.Result
	Churn sim.ChurnStats
	// Err is the job's failure: a simulation error, a recovered panic,
	// or the sweep context's cancellation error.
	Err error
	// Cached reports that the result was served from the engine's cache
	// (or coalesced with an identical job in the same batch) instead of
	// being simulated again.
	Cached bool
}
