package sweep

import (
	"encoding/json"

	"hybridtlb/internal/sim"
)

// Store is the engine's persistence seam: a durable byte store keyed
// by the SHA-256 job key. Load reports a miss as (nil, false) — never
// an error — so a damaged entry degrades to re-simulation. Implemented
// by internal/persist.ResultStore; the engine layers it under the
// in-memory cache as a write-through second level.
type Store interface {
	Load(key string) ([]byte, bool)
	Save(key string, data []byte) error
}

// storedEntry is the JSON payload persisted per cell. sim.Result and
// sim.ChurnStats carry only exported integer fields, so the round trip
// through JSON is lossless and downstream serialization of a restored
// result is byte-identical to a freshly simulated one.
type storedEntry struct {
	Result sim.Result     `json:"result"`
	Churn  sim.ChurnStats `json:"churn"`
}

func encodeEntry(c cached) ([]byte, error) {
	return json.Marshal(storedEntry{Result: c.res, Churn: c.churn})
}

// decodeEntry rejects undecodable payloads with ok=false; the caller
// treats that as a store miss.
func decodeEntry(data []byte) (cached, bool) {
	var e storedEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return cached{}, false
	}
	return cached{res: e.Result, churn: e.Churn}, true
}
