package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/sim"
	"hybridtlb/internal/workload"
)

// smallSpec is a cheap but real scheme×workload grid.
func smallSpec(t testing.TB) Spec {
	t.Helper()
	var wls []workload.Spec
	for _, name := range []string{"gups", "omnetpp"} {
		spec, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, spec)
	}
	return Spec{
		Base: sim.Config{
			FootprintPages: 1 << 12,
			Accesses:       10_000,
			Seed:           7,
			Pressure:       0.15,
		},
		Schemes:   []mmu.Scheme{mmu.Base, mmu.Anchor},
		Workloads: wls,
		Scenarios: []mapping.Scenario{mapping.Low, mapping.Medium},
	}
}

func TestSpecExpansion(t *testing.T) {
	spec := smallSpec(t)
	spec.Seeds = []int64{1, 2}
	jobs := spec.Jobs()
	if want := 2 * 2 * 2 * 2; len(jobs) != want || spec.Size() != want {
		t.Fatalf("jobs = %d, Size = %d, want %d", len(jobs), spec.Size(), want)
	}
	// Deterministic order: workloads outermost, seeds inside schemes.
	if jobs[0].Config.Workload.Name != "gups" || jobs[0].Config.Seed != 1 {
		t.Errorf("job 0 = %v seed=%d", jobs[0], jobs[0].Config.Seed)
	}
	if jobs[1].Config.Seed != 2 {
		t.Errorf("job 1 should vary the seed first, got seed=%d", jobs[1].Config.Seed)
	}
	if last := jobs[len(jobs)-1].Config; last.Workload.Name != "omnetpp" ||
		last.Scenario != mapping.Medium || last.Scheme != mmu.Anchor || last.Seed != 2 {
		t.Errorf("last job = %v seed=%d", jobs[len(jobs)-1], last.Seed)
	}
	// The zero spec over a base config is exactly one job.
	one := Spec{Base: spec.Base}
	if got := len(one.Jobs()); got != 1 {
		t.Errorf("zero-axis spec expanded to %d jobs", got)
	}
}

func TestKeyDistinguishesConfigs(t *testing.T) {
	base := smallSpec(t).Jobs()[0]
	same := base
	if base.Key() != same.Key() {
		t.Error("identical jobs hash differently")
	}
	// The defaulted form shares the explicit form's cell.
	defaulted := base
	defaulted.Config = defaulted.Config.WithDefaults()
	if base.Key() != defaulted.Key() {
		t.Error("defaulted config hashes differently from its zero form")
	}
	for name, mutate := range map[string]func(*Job){
		"seed":     func(j *Job) { j.Config.Seed++ },
		"scheme":   func(j *Job) { j.Config.Scheme = mmu.RMM },
		"scenario": func(j *Job) { j.Config.Scenario = mapping.High },
		"distance": func(j *Job) { j.Config.FixedDistance = 64 },
		"pressure": func(j *Job) { j.Config.Pressure = 0.4 },
		"churn":    func(j *Job) { j.ChurnIntervalInstructions = 1000; j.ChurnPages = 16 },
		"hardware": func(j *Job) { j.Config.HW = mmu.DefaultConfig(); j.Config.HW.L2Entries = 2048 },
	} {
		j := base
		mutate(&j)
		if j.Key() == base.Key() {
			t.Errorf("%s change did not change the key", name)
		}
	}
	// Shards, like Probe, never changes results (the equivalence suite
	// proves shard-parallel ≡ serial), so it must NOT change the key: a
	// sharded run and a serial run of the same cell share a cache cell.
	sharded := base
	sharded.Config.Shards = 8
	if sharded.Key() != base.Key() {
		t.Error("Shards changed the cache key; sharded and serial runs of one cell must share it")
	}
}

// TestEngineProbe pins the Options.Probe factory contract: called once
// per simulated cell (never for coalesced duplicates), never overriding
// a job's own Config.Probe, and free — attaching probes leaves every
// result byte-identical.
func TestEngineProbe(t *testing.T) {
	spec := smallSpec(t)
	spec.Base.EpochInstructions = 10_000 // several epochs per 10k-access job
	jobs := spec.Jobs()
	jobs = append(jobs, jobs[0]) // coalesced duplicate: no factory call

	plain, err := New(Options{Parallelism: 4}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	factory := map[string]int{}
	samples := map[string]int{}
	var own atomic.Int64
	eng := New(Options{Parallelism: 4, Probe: func(j Job) sim.Probe {
		key := j.Key()
		mu.Lock()
		factory[key]++
		mu.Unlock()
		return func(sim.ProbeSample) {
			mu.Lock()
			samples[key]++
			mu.Unlock()
		}
	}})
	// One job carries its own probe; the factory must not replace it.
	// A fresh seed makes it a distinct cell (a duplicate key would be
	// coalesced and fire nothing).
	ownJob := jobs[1]
	ownJob.Config.Seed += 100
	ownJob.Config.Probe = func(sim.ProbeSample) { own.Add(1) }
	probed := append(append([]Job{}, jobs...), ownJob)

	res, err := eng.Run(context.Background(), probed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if !reflect.DeepEqual(plain[i].Res, res[i].Res) {
			t.Errorf("job %d: probe changed the result", i)
		}
	}
	for i, j := range jobs[:len(jobs)-1] {
		key := j.Key()
		if factory[key] != 1 {
			t.Errorf("job %d: factory called %d times, want 1", i, factory[key])
		}
		if samples[key] == 0 {
			t.Errorf("job %d: probe never fired", i)
		}
	}
	if own.Load() == 0 {
		t.Error("job-supplied probe never fired")
	}
	if n := factory[ownJob.Key()]; n != 0 {
		t.Errorf("factory called %d times for a job with its own probe", n)
	}
}

// TestDeterministicOrder inverts completion order (early jobs finish
// last) and checks results still come back in spec order.
func TestDeterministicOrder(t *testing.T) {
	const n = 16
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i].Config.Seed = int64(i + 1)
	}
	e := New(Options{Parallelism: n, DisableCache: true})
	started := make(chan struct{}, n)
	release := make(chan struct{})
	e.runJob = func(j Job) (sim.Result, sim.ChurnStats, error) {
		started <- struct{}{}
		<-release
		// Later seeds return sooner.
		time.Sleep(time.Duration(n-j.Config.Seed) * time.Millisecond)
		return sim.Result{Instructions: uint64(j.Config.Seed)}, sim.ChurnStats{}, nil
	}
	go func() {
		for i := 0; i < n; i++ {
			<-started
		}
		close(release)
	}()
	results, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Res.Instructions != uint64(i+1) {
			t.Fatalf("result %d carries job %d's payload", i, r.Res.Instructions)
		}
	}
}

// TestSerialParallelIdentical is the determinism contract: a real grid
// swept at parallelism 1 and at high parallelism produces bit-identical
// results.
func TestSerialParallelIdentical(t *testing.T) {
	jobs := smallSpec(t).Jobs()
	serialEng := New(Options{Parallelism: 1})
	serial, err := serialEng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallelEng := New(Options{Parallelism: 8})
	parallel, err := parallelEng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Res, parallel[i].Res) {
			t.Fatalf("job %d (%v) differs between serial and parallel sweep:\n%+v\nvs\n%+v",
				i, jobs[i], serial[i].Res, parallel[i].Res)
		}
	}
}

func TestCacheHitCounting(t *testing.T) {
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i].Config.Seed = int64(i % 2) // three copies of two unique jobs
	}
	var executed atomic.Int64
	e := New(Options{Parallelism: 4})
	e.runJob = func(j Job) (sim.Result, sim.ChurnStats, error) {
		executed.Add(1)
		return sim.Result{Instructions: uint64(j.Config.Seed)}, sim.ChurnStats{}, nil
	}
	results, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 2 {
		t.Errorf("executed %d simulations, want 2 (duplicates coalesced)", got)
	}
	for i, r := range results {
		if r.Res.Instructions != uint64(i%2) {
			t.Errorf("result %d fanned out wrong payload %d", i, r.Res.Instructions)
		}
		if wantCached := i >= 2; r.Cached != wantCached {
			t.Errorf("result %d Cached = %t, want %t", i, r.Cached, wantCached)
		}
	}
	if s := e.Stats(); s.Jobs != 6 || s.Misses != 2 || s.Hits != 4 {
		t.Errorf("first batch stats = %+v", s)
	}

	// A second identical batch is served entirely from the cache.
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 2 {
		t.Errorf("second batch re-executed: %d total runs", got)
	}
	if s := e.Stats(); s.Jobs != 12 || s.Misses != 2 || s.Hits != 10 {
		t.Errorf("cumulative stats = %+v", s)
	}

	// DisableCache runs every duplicate.
	raw := New(Options{Parallelism: 2, DisableCache: true})
	var rawRuns atomic.Int64
	raw.runJob = func(Job) (sim.Result, sim.ChurnStats, error) {
		rawRuns.Add(1)
		return sim.Result{}, sim.ChurnStats{}, nil
	}
	if _, err := raw.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if got := rawRuns.Load(); got != 6 {
		t.Errorf("DisableCache executed %d, want 6", got)
	}
}

// TestParallelWallClockSpeedup demonstrates the engine genuinely
// overlaps jobs: 8 blocking jobs at parallelism 4 must finish at least
// 2x faster than at parallelism 1. Blocking (rather than CPU-bound)
// jobs keep the check meaningful on single-core CI hosts; the
// BenchmarkSweepEngine numbers in EXPERIMENTS.md cover the CPU-bound
// case on real simulations.
func TestParallelWallClockSpeedup(t *testing.T) {
	const n, delay = 8, 30 * time.Millisecond
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i].Config.Seed = int64(i)
	}
	elapsed := func(parallelism int) time.Duration {
		e := New(Options{Parallelism: parallelism, DisableCache: true})
		e.runJob = func(Job) (sim.Result, sim.ChurnStats, error) {
			time.Sleep(delay)
			return sim.Result{}, sim.ChurnStats{}, nil
		}
		start := time.Now()
		if _, err := e.Run(context.Background(), jobs); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := elapsed(1)   // ~ n * delay
	parallel := elapsed(4) // ~ n/4 * delay
	if parallel*2 > serial {
		t.Errorf("parallelism 4 took %v vs %v serial; want at least 2x speedup", parallel, serial)
	}
}

func TestContextCancellation(t *testing.T) {
	const n = 8
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i].Config.Seed = int64(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := New(Options{Parallelism: 1, DisableCache: true})
	blocked := make(chan struct{})
	e.runJob = func(j Job) (sim.Result, sim.ChurnStats, error) {
		if j.Config.Seed == 0 {
			close(blocked)
			<-ctx.Done() // first job straddles the cancellation
		}
		return sim.Result{Instructions: 1}, sim.ChurnStats{}, nil
	}
	go func() {
		<-blocked
		cancel()
	}()
	results, err := e.Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	// The in-flight job completed; everything queued behind it was
	// cancelled without running.
	if results[0].Err != nil {
		t.Errorf("in-flight job reported %v", results[0].Err)
	}
	for i := 1; i < n; i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Errorf("job %d error = %v, want context.Canceled", i, results[i].Err)
		}
	}
}

func TestPanicRecovery(t *testing.T) {
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i].Config.Seed = int64(i)
		jobs[i].Config.Scheme = mmu.Anchor
	}
	e := New(Options{Parallelism: 2, DisableCache: true})
	e.runJob = func(j Job) (sim.Result, sim.ChurnStats, error) {
		if j.Config.Seed == 2 {
			panic("boom")
		}
		return sim.Result{Instructions: 9}, sim.ChurnStats{}, nil
	}
	results, err := e.Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("sweep with a panicking job returned nil error")
	}
	for _, needle := range []string{"panic", "boom", "seed=2", "anchor"} {
		if !strings.Contains(err.Error(), needle) {
			t.Errorf("aggregate error %q does not identify the job (%q missing)", err, needle)
		}
	}
	for i, r := range results {
		if i == 2 {
			if r.Err == nil {
				t.Error("panicking job has nil Err")
			}
			continue
		}
		if r.Err != nil || r.Res.Instructions != 9 {
			t.Errorf("job %d did not survive the neighbour's panic: %+v", i, r)
		}
	}
	// A panic is not cached: a retry re-executes it.
	recovered := false
	e.runJob = func(j Job) (sim.Result, sim.ChurnStats, error) {
		if j.Config.Seed == 2 {
			recovered = true
		}
		return sim.Result{Instructions: 9}, sim.ChurnStats{}, nil
	}
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if !recovered {
		t.Error("failed job was not retried on the next batch")
	}
}

func TestErrorAggregation(t *testing.T) {
	jobs := make([]Job, 3)
	for i := range jobs {
		jobs[i].Config.Seed = int64(i)
	}
	e := New(Options{Parallelism: 2, DisableCache: true})
	e.runJob = func(j Job) (sim.Result, sim.ChurnStats, error) {
		if j.Config.Seed > 0 {
			return sim.Result{}, sim.ChurnStats{}, fmt.Errorf("cell broke")
		}
		return sim.Result{}, sim.ChurnStats{}, nil
	}
	_, err := e.Run(context.Background(), jobs)
	if err == nil || !strings.Contains(err.Error(), "2 of 3 jobs failed") {
		t.Errorf("aggregate error = %v", err)
	}
}

func TestProgressReporting(t *testing.T) {
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i].Config.Seed = int64(i % 3) // includes in-batch duplicates
	}
	var calls []int
	e := New(Options{
		Parallelism: 1,
		Progress: func(done, total int, _ Job) {
			if total != 5 {
				t.Errorf("total = %d, want 5", total)
			}
			calls = append(calls, done)
		},
	})
	e.runJob = func(Job) (sim.Result, sim.ChurnStats, error) {
		return sim.Result{}, sim.ChurnStats{}, nil
	}
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 5 || calls[len(calls)-1] != 5 {
		t.Errorf("progress calls = %v, want 5 calls ending at 5", calls)
	}
}

// TestStaticIdealMatchesSerial checks the engine-routed static ideal
// against sim.RunStaticIdeal, and that a repeat is fully cache-served.
func TestStaticIdealMatchesSerial(t *testing.T) {
	spec, err := workload.ByName("gups")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Scheme:         mmu.Anchor,
		Workload:       spec,
		Scenario:       mapping.Medium,
		FootprintPages: 1 << 12,
		Accesses:       10_000,
		Seed:           7,
	}
	wantBest, wantAll, err := sim.RunStaticIdeal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Parallelism: 8})
	gotBest, gotAll, err := StaticIdeal(context.Background(), e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantBest, gotBest) {
		t.Errorf("best run differs:\n%+v\nvs\n%+v", wantBest, gotBest)
	}
	if !reflect.DeepEqual(wantAll, gotAll) {
		t.Error("per-distance results differ from the serial path")
	}
	before := e.Stats()
	if _, _, err := StaticIdeal(context.Background(), e, cfg); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.Misses != before.Misses || after.Hits != before.Hits+len(wantAll) {
		t.Errorf("repeat probes not cache-served: before %+v after %+v", before, after)
	}
	if _, _, err := StaticIdeal(context.Background(), e, sim.Config{Scheme: mmu.Base}); err == nil {
		t.Error("static ideal accepted a non-anchor scheme")
	}
}
