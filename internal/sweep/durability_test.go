package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridtlb/internal/mmu"
	"hybridtlb/internal/persist"
	"hybridtlb/internal/sim"
)

// fakeSim is a deterministic stand-in for the simulator: the result is
// a pure function of the job, so byte-identity across runs is checkable
// without paying for real simulations.
func fakeSim(j Job) (sim.Result, sim.ChurnStats, error) {
	return sim.Result{
		Scheme:       j.Config.Scheme,
		Instructions: uint64(j.Config.Seed) * 100,
		Stats:        mmu.Stats{Accesses: uint64(j.Config.Seed), Walks: uint64(j.Config.FootprintPages)},
	}, sim.ChurnStats{Operations: uint64(j.Config.Seed)}, nil
}

// instantSleep skips backoff delays while recording them.
func instantSleep(delays *[]time.Duration, mu *sync.Mutex) Sleeper {
	return func(ctx context.Context, d time.Duration) bool {
		mu.Lock()
		*delays = append(*delays, d)
		mu.Unlock()
		return ctx.Err() == nil
	}
}

func seedJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Config: sim.Config{FootprintPages: 64, Accesses: 100, Seed: int64(i + 1)}}
	}
	return jobs
}

// A second engine over the same store directory must serve every cell
// from disk without re-simulating, and the results must be identical.
func TestStoreWriteThroughAndReload(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := seedJobs(4)

	var sims atomic.Int64
	counted := func(j Job) (sim.Result, sim.ChurnStats, error) {
		sims.Add(1)
		return fakeSim(j)
	}

	e1 := New(Options{Parallelism: 2, Store: store})
	e1.runJob = counted
	first, err := e1.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 4 {
		t.Fatalf("first run simulated %d cells, want 4", got)
	}
	if st := store.Stats(); st.Writes != 4 {
		t.Fatalf("store stats = %+v, want 4 writes", st)
	}

	store2, err := persist.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Options{Parallelism: 2, Store: store2})
	e2.runJob = counted
	second, err := e2.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 4 {
		t.Fatalf("second run re-simulated (%d total sims, want still 4)", got)
	}
	for i := range first {
		if !reflect.DeepEqual(first[i].Res, second[i].Res) || !reflect.DeepEqual(first[i].Churn, second[i].Churn) {
			t.Fatalf("cell %d differs after store reload:\n first %+v\nsecond %+v", i, first[i], second[i])
		}
		if !second[i].Cached {
			t.Errorf("cell %d not marked cached on store hit", i)
		}
	}
	if st := e2.Stats(); st.StoreHits != 4 {
		t.Fatalf("engine stats = %+v, want 4 store hits", st)
	}
}

// An undecodable store entry must degrade to re-simulation.
type garbageStore struct{ saves atomic.Int64 }

func (g *garbageStore) Load(key string) ([]byte, bool)  { return []byte("not json"), true }
func (g *garbageStore) Save(key string, d []byte) error { g.saves.Add(1); return nil }

func TestStoreGarbageFallsBackToSimulation(t *testing.T) {
	gs := &garbageStore{}
	e := New(Options{Parallelism: 1, Store: gs})
	e.runJob = fakeSim
	results, err := e.Run(context.Background(), seedJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Cached {
			t.Fatalf("cell %d = %+v, want fresh simulation", i, r)
		}
	}
	if st := e.Stats(); st.StoreHits != 0 {
		t.Fatalf("stats = %+v, want 0 store hits for garbage entries", st)
	}
	if gs.saves.Load() != 2 {
		t.Fatalf("saves = %d, want write-through of both fresh results", gs.saves.Load())
	}
}

// A failing store write must not fail the sweep, only count.
type failingStore struct{}

func (failingStore) Load(key string) ([]byte, bool)  { return nil, false }
func (failingStore) Save(key string, d []byte) error { return errors.New("disk full") }

func TestStoreWriteErrorDegrades(t *testing.T) {
	e := New(Options{Parallelism: 1, Store: failingStore{}})
	e.runJob = fakeSim
	if _, err := e.Run(context.Background(), seedJobs(3)); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.StoreErrors != 3 {
		t.Fatalf("stats = %+v, want 3 store errors", st)
	}
}

func TestRetryTransientThenSuccess(t *testing.T) {
	var mu sync.Mutex
	var delays []time.Duration
	attempts := make(map[string]int)
	e := New(Options{
		Parallelism: 2,
		Retry:       RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Seed: 42},
		Sleep:       instantSleep(&delays, &mu),
	})
	e.runJob = func(j Job) (sim.Result, sim.ChurnStats, error) {
		mu.Lock()
		attempts[j.String()]++
		n := attempts[j.String()]
		mu.Unlock()
		if n < 3 {
			return sim.Result{}, sim.ChurnStats{}, errors.New("transient blip")
		}
		return fakeSim(j)
	}
	results, err := e.Run(context.Background(), seedJobs(2))
	if err != nil {
		t.Fatalf("sweep failed despite retries: %v", err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %d error after retries: %v", i, r.Err)
		}
	}
	if st := e.Stats(); st.Retries != 4 {
		t.Fatalf("stats = %+v, want 4 retries (2 per cell)", st)
	}
	if len(delays) != 4 {
		t.Fatalf("sleeper called %d times, want 4", len(delays))
	}
	for _, d := range delays {
		// Base 10ms doubled at most once, jitter in [0.5, 1.5).
		if d < 5*time.Millisecond || d >= 30*time.Millisecond {
			t.Errorf("backoff %v outside jittered bounds", d)
		}
	}
}

// Backoff delays are a pure function of (seed, key, attempt): two
// policies agree exactly, independent of scheduling.
func TestRetryJitterDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Seed: 7}
	q := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Seed: 7}
	key := seedJobs(1)[0].Key()
	for attempt := 1; attempt <= 4; attempt++ {
		if p.delay(key, attempt) != q.delay(key, attempt) {
			t.Fatalf("attempt %d: jitter differs for identical seeds", attempt)
		}
	}
	r := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Seed: 8}
	same := 0
	for attempt := 1; attempt <= 4; attempt++ {
		if p.delay(key, attempt) == r.delay(key, attempt) {
			same++
		}
	}
	if same == 4 {
		t.Fatal("different seeds produced identical jitter everywhere")
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	var mu sync.Mutex
	var delays []time.Duration
	var calls atomic.Int64
	e := New(Options{
		Parallelism: 1,
		Retry:       RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond},
		Sleep:       instantSleep(&delays, &mu),
	})
	e.runJob = func(j Job) (sim.Result, sim.ChurnStats, error) {
		calls.Add(1)
		return sim.Result{}, sim.ChurnStats{}, Permanent(errors.New("bad config"))
	}
	results, err := e.Run(context.Background(), seedJobs(1))
	if err == nil {
		t.Fatal("want error for permanently failing cell")
	}
	if calls.Load() != 1 {
		t.Fatalf("permanent error ran %d attempts, want 1", calls.Load())
	}
	if !IsPermanent(results[0].Err) {
		t.Fatalf("cell error %v lost its Permanent mark", results[0].Err)
	}
}

func TestPanicNotRetried(t *testing.T) {
	var calls atomic.Int64
	e := New(Options{Parallelism: 1, Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		Sleep: func(ctx context.Context, d time.Duration) bool { return true }})
	e.runJob = func(j Job) (sim.Result, sim.ChurnStats, error) {
		calls.Add(1)
		panic("boom")
	}
	if _, err := e.Run(context.Background(), seedJobs(1)); err == nil {
		t.Fatal("want error from panicking cell")
	}
	if calls.Load() != 1 {
		t.Fatalf("panicking cell ran %d attempts, want 1 (panics are permanent)", calls.Load())
	}
}

// Failed cells are never written to the store; only the retried
// success lands there.
func TestRetryOnlyRerunsFailedCells(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var delays []time.Duration
	failedOnce := false
	e := New(Options{
		Parallelism: 1, // serialize so "first cell fails once" is well-defined
		Store:       store,
		Retry:       RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Sleep:       instantSleep(&delays, &mu),
	})
	var sims atomic.Int64
	e.runJob = func(j Job) (sim.Result, sim.ChurnStats, error) {
		sims.Add(1)
		mu.Lock()
		defer mu.Unlock()
		if j.Config.Seed == 1 && !failedOnce {
			failedOnce = true
			return sim.Result{}, sim.ChurnStats{}, errors.New("flake")
		}
		return fakeSim(j)
	}
	if _, err := e.Run(context.Background(), seedJobs(3)); err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 4 {
		t.Fatalf("simulated %d attempts, want 4 (3 cells + 1 retry)", got)
	}
	if st := store.Stats(); st.Writes != 3 {
		t.Fatalf("store stats = %+v, want exactly 3 writes", st)
	}
}

// With a fixed seed, a chaotic run (transient faults + retries) must
// converge to results identical to a fault-free run.
func TestFaultInjectionConvergesToCleanResults(t *testing.T) {
	jobs := seedJobs(8)

	clean := New(Options{Parallelism: 4})
	clean.runJob = fakeSim
	want, err := clean.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var delays []time.Duration
	chaotic := New(Options{
		Parallelism: 4,
		Retry:       RetryPolicy{MaxAttempts: 8, BaseDelay: time.Microsecond, Seed: 3},
		Faults:      &FaultInjector{Seed: 11, TransientRate: 0.4},
		Sleep:       instantSleep(&delays, &mu),
	})
	chaotic.runJob = fakeSim
	got, err := chaotic.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("chaotic run did not converge: %v", err)
	}
	for i := range want {
		if !reflect.DeepEqual(want[i].Res, got[i].Res) {
			t.Fatalf("cell %d: chaotic result differs from clean run", i)
		}
	}
	if st := chaotic.Stats(); st.Retries == 0 {
		t.Fatal("fault injector at 40% produced no retries — injection not reaching cells")
	}
}

// The injector's decisions are a pure function of (seed, key, attempt).
func TestFaultInjectorDeterministic(t *testing.T) {
	a := &FaultInjector{Seed: 5, TransientRate: 0.3, PermanentRate: 0.05, PanicRate: 0.05, Delay: time.Second}
	b := &FaultInjector{Seed: 5, TransientRate: 0.3, PermanentRate: 0.05, PanicRate: 0.05, Delay: time.Second}
	class := func(f fault) string {
		switch {
		case f.panicMsg != "":
			return "panic"
		case errors.Is(f.err, ErrInjectedPermanent):
			return "permanent"
		case errors.Is(f.err, ErrInjectedTransient):
			return "transient"
		default:
			return "none"
		}
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("%064d", i)
		for attempt := 1; attempt <= 3; attempt++ {
			fa, fb := a.plan(key, attempt), b.plan(key, attempt)
			if fa.delay != fb.delay || class(fa) != class(fb) {
				t.Fatalf("plan(%s, %d) diverged between identical injectors", key, attempt)
			}
		}
	}
	var nilInj *FaultInjector
	if f := nilInj.plan("k", 1); f.err != nil || f.delay != 0 || f.panicMsg != "" {
		t.Fatal("nil injector injected something")
	}
}

// Multi-cell failures report every distinct error, not just the first.
func TestFailuresJoinsDistinctErrors(t *testing.T) {
	errA, errB := errors.New("first failure"), errors.New("second failure")
	results := []Result{
		{Err: fmt.Errorf("job a: %w", errA)},
		{},
		{Err: fmt.Errorf("job b: %w", errB)},
		{Err: fmt.Errorf("job a: %w", errA)}, // duplicate message reported once
	}
	err := failures(results)
	if err == nil {
		t.Fatal("want aggregate error")
	}
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("aggregate %v does not wrap both distinct errors", err)
	}
	msg := err.Error()
	if want := "3 of 4 jobs failed"; !strings.Contains(msg, want) {
		t.Fatalf("aggregate %q missing %q", msg, want)
	}
	if n := strings.Count(msg, "first failure"); n != 1 {
		t.Fatalf("duplicate error message appears %d times, want 1:\n%s", n, msg)
	}
}
