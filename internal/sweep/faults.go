package sweep

import (
	"errors"
	"time"
)

// Errors injected by a FaultInjector, distinguishable by errors.Is so
// chaos tests can tell injected failures from real ones.
var (
	ErrInjectedTransient = errors.New("injected transient fault")
	ErrInjectedPermanent = errors.New("injected permanent fault")
)

// FaultInjector is the engine's first-class chaos hook, promoted from
// the test-only runJob substitution: it perturbs cell execution with
// seeded probabilistic faults. Decisions are derived by hashing
// (Seed, job key, attempt), so a given seed produces the same fault
// pattern on every run regardless of parallelism — which is what lets
// chaos tests assert byte-identical recovery.
//
// A nil *FaultInjector injects nothing.
type FaultInjector struct {
	// Seed selects the fault pattern.
	Seed int64
	// TransientRate is the per-attempt probability of a retryable error.
	TransientRate float64
	// PermanentRate is the per-attempt probability of a non-retryable error.
	PermanentRate float64
	// PanicRate is the per-attempt probability of a panic inside the cell.
	PanicRate float64
	// Delay, when positive, stretches each attempt by a deterministic
	// duration in [0, Delay) — the lever chaos tests use to widen the
	// kill window of a running sweep.
	Delay time.Duration
}

// fault is the injector's decision for one attempt.
type fault struct {
	delay    time.Duration
	err      error
	panicMsg string
}

// plan decides what (if anything) to inject for one attempt of one
// cell. Panic wins over permanent over transient, so rates compose
// predictably.
func (f *FaultInjector) plan(key string, attempt int) fault {
	var out fault
	if f == nil {
		return out
	}
	if f.Delay > 0 {
		out.delay = time.Duration(hashUnit(f.Seed, key, attempt, "delay") * float64(f.Delay))
	}
	switch {
	case f.PanicRate > 0 && hashUnit(f.Seed, key, attempt, "panic") < f.PanicRate:
		out.panicMsg = "injected panic"
	case f.PermanentRate > 0 && hashUnit(f.Seed, key, attempt, "permanent") < f.PermanentRate:
		out.err = Permanent(ErrInjectedPermanent)
	case f.TransientRate > 0 && hashUnit(f.Seed, key, attempt, "transient") < f.TransientRate:
		out.err = ErrInjectedTransient
	}
	return out
}
