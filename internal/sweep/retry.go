package sweep

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// RetryPolicy re-runs failed cells with capped exponential backoff.
// Jitter is derived by hashing (Seed, job key, attempt) — not from a
// shared RNG — so delays are reproducible and independent of worker
// scheduling order, keeping the engine inside the tlbvet determinism
// boundary. Retries re-run only the failed cell; successful results
// are never recomputed, so they stay byte-identical.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per cell (0 or 1: no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps any single backoff (default 5s).
	MaxDelay time.Duration
	// Seed varies the jitter sequence between deployments.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// delay returns the backoff before retrying the given attempt (1-based):
// BaseDelay doubled per attempt, multiplied by a deterministic jitter
// factor in [0.5, 1.5), capped at MaxDelay.
func (p RetryPolicy) delay(key string, attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	jittered := time.Duration(float64(d) * (0.5 + hashUnit(p.Seed, key, attempt, "backoff")))
	if jittered > p.MaxDelay {
		jittered = p.MaxDelay
	}
	return jittered
}

// hashUnit maps (seed, key, attempt, salt) to a uniform value in
// [0, 1). FNV-1a over the formatted tuple is cheap, stateless, and
// deterministic — the engine's sanctioned randomness source for
// anything that must not depend on goroutine scheduling.
func hashUnit(seed int64, key string, attempt int, salt string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%s", seed, key, attempt, salt)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Sleeper waits for d or until ctx is done, reporting true if the full
// delay elapsed. Tests inject one to make backoff instantaneous.
type Sleeper func(ctx context.Context, d time.Duration) bool

func waitSleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so the retry loop gives up immediately; use it
// for failures (bad config, panics) that re-running cannot fix.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}
