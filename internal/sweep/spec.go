package sweep

import (
	"hybridtlb/internal/mapping"
	"hybridtlb/internal/mmu"
	"hybridtlb/internal/sim"
	"hybridtlb/internal/workload"
)

// Spec declares a sweep as the cross product of its axis lists over a
// base configuration. A nil/empty axis contributes the base config's own
// value, so the zero Spec with a populated Base expands to exactly one
// job.
type Spec struct {
	// Base supplies every field the axes don't vary (accesses, hardware,
	// cost model, ...). Axis values override the corresponding field.
	Base sim.Config

	Schemes   []mmu.Scheme
	Workloads []workload.Spec
	Scenarios []mapping.Scenario
	Seeds     []int64
	Pressures []float64
	// Distances are FixedDistance values; 0 means dynamic selection.
	Distances []uint64
}

// Size returns the number of jobs the spec expands to.
func (s Spec) Size() int {
	n := 1
	for _, axis := range []int{
		len(s.Workloads), len(s.Scenarios), len(s.Schemes),
		len(s.Seeds), len(s.Pressures), len(s.Distances),
	} {
		if axis > 0 {
			n *= axis
		}
	}
	return n
}

// Jobs expands the cross product in deterministic order: workloads
// outermost, then scenarios, schemes, seeds, pressures, distances — the
// row-major order the report tables print in.
func (s Spec) Jobs() []Job {
	jobs := make([]Job, 0, s.Size())
	for _, wl := range orDefault(s.Workloads, s.Base.Workload) {
		for _, sc := range orDefault(s.Scenarios, s.Base.Scenario) {
			for _, scheme := range orDefault(s.Schemes, s.Base.Scheme) {
				for _, seed := range orDefault(s.Seeds, s.Base.Seed) {
					for _, press := range orDefault(s.Pressures, s.Base.Pressure) {
						for _, dist := range orDefault(s.Distances, s.Base.FixedDistance) {
							cfg := s.Base
							cfg.Workload = wl
							cfg.Scenario = sc
							cfg.Scheme = scheme
							cfg.Seed = seed
							cfg.Pressure = press
							cfg.FixedDistance = dist
							jobs = append(jobs, Job{Config: cfg})
						}
					}
				}
			}
		}
	}
	return jobs
}

// orDefault returns the axis values, or the base value as a one-element
// axis when the list is empty.
func orDefault[T any](axis []T, base T) []T {
	if len(axis) == 0 {
		return []T{base}
	}
	return axis
}
