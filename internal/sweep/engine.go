package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hybridtlb/internal/sim"
)

// ProgressFunc observes sweep completion: done jobs out of total in the
// current batch, and the job that just finished. Calls are serialized by
// the engine, so implementations need no locking of their own; they must
// not block for long, since they run on the worker hot path.
type ProgressFunc func(done, total int, job Job)

// Options configures an Engine.
type Options struct {
	// Parallelism bounds concurrently running simulations
	// (0: runtime.GOMAXPROCS(0)).
	Parallelism int
	// Progress, when non-nil, is invoked as jobs complete.
	Progress ProgressFunc
	// DisableCache turns off result memoization; every job is simulated,
	// including duplicates within one batch.
	DisableCache bool
	// Store, when non-nil, is a durable second cache level: memory
	// misses probe it before simulating, and fresh results are written
	// through to it. A Store miss or damaged entry falls back to
	// simulation.
	Store Store
	// Retry re-runs failed cells per its policy (zero value: one
	// attempt, no retries).
	Retry RetryPolicy
	// Faults, when non-nil, injects seeded chaos into every attempt.
	Faults *FaultInjector
	// Sleep replaces the backoff sleeper (nil: a real timer). Tests
	// inject one to make retry delays instantaneous.
	Sleep Sleeper
	// Probe, when non-nil, builds a per-cell epoch observer: each job
	// whose Config.Probe is nil gets Probe(job) attached before it is
	// simulated. Probes fire only for cells actually simulated — results
	// served from the in-memory cache or the durable Store replay no
	// epochs — and a retried cell re-fires its epochs on every attempt.
	// Probe funcs never affect results or cache keys.
	Probe func(Job) sim.Probe
}

// CacheStats counts the engine's cache traffic across its lifetime.
type CacheStats struct {
	// Jobs is the total number of jobs submitted.
	Jobs int
	// Hits counts jobs served without a new simulation: either from the
	// cache of an earlier batch or coalesced with an identical job in
	// the same batch.
	Hits int
	// Misses counts jobs that missed the in-memory cache. A miss may
	// still be served from the durable Store (counted in StoreHits)
	// instead of simulating.
	Misses int
	// StoreHits counts memory misses resolved from the durable Store.
	StoreHits int
	// StoreErrors counts failed write-throughs to the Store; the result
	// is still returned and cached in memory.
	StoreErrors int
	// Retries counts re-run attempts after per-cell failures.
	Retries int
}

// cached is one memoized job outcome. Failed jobs are never cached.
type cached struct {
	res   sim.Result
	churn sim.ChurnStats
}

// Engine executes sweep jobs on a bounded worker pool with a
// content-addressed result cache. An Engine is safe for concurrent use
// and is typically shared across experiments so common cells (the base
// scheme, static-ideal probes) are computed once per process.
//
// Cached sim.Result values are shared between the jobs they serve;
// callers must treat results (including the AnchorActions map) as
// read-only.
type Engine struct {
	parallelism  int
	progress     ProgressFunc
	disableCache bool
	store        Store
	retry        RetryPolicy
	faults       *FaultInjector
	sleep        Sleeper
	probe        func(Job) sim.Probe

	// runJob is the execution function; tests substitute it to inject
	// blocking and completion-order inversions (probabilistic faults
	// belong in Options.Faults).
	runJob func(Job) (sim.Result, sim.ChurnStats, error)

	mu    sync.Mutex
	cache map[string]cached
	stats CacheStats
}

// New creates an engine.
func New(opts Options) *Engine {
	p := opts.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = waitSleep
	}
	return &Engine{
		parallelism:  p,
		progress:     opts.Progress,
		disableCache: opts.DisableCache,
		store:        opts.Store,
		retry:        opts.Retry.withDefaults(),
		faults:       opts.Faults,
		sleep:        sleep,
		probe:        opts.Probe,
		runJob:       execute,
		cache:        make(map[string]cached),
	}
}

// Stats returns the engine's cumulative cache statistics.
func (e *Engine) Stats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// execute runs one job.
func execute(j Job) (res sim.Result, churn sim.ChurnStats, err error) {
	if j.ChurnIntervalInstructions != 0 || j.ChurnPages != 0 {
		return sim.RunWithChurn(sim.ChurnConfig{
			Config:                    j.Config,
			ChurnIntervalInstructions: j.ChurnIntervalInstructions,
			ChurnPages:                j.ChurnPages,
		})
	}
	res, err = sim.Run(j.Config)
	return res, sim.ChurnStats{}, err
}

// safeRun executes one attempt of one job, converting a panic anywhere
// in the simulator (or injected by the fault hook) into a per-job error
// naming the job, so one failing cell cannot kill the sweep. Panics are
// marked Permanent: re-running a crashing cell cannot help.
func (e *Engine) safeRun(ctx context.Context, j Job, key string, attempt int) (res sim.Result, churn sim.ChurnStats, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = Permanent(fmt.Errorf("job %s: panic: %v", j, p))
		}
	}()
	if f := e.faults.plan(key, attempt); f.delay > 0 || f.err != nil || f.panicMsg != "" {
		if f.delay > 0 {
			e.sleep(ctx, f.delay)
		}
		if f.panicMsg != "" {
			panic(f.panicMsg)
		}
		if f.err != nil {
			return res, churn, fmt.Errorf("job %s: %w", j, f.err)
		}
	}
	res, churn, err = e.runJob(j)
	if err != nil {
		err = fmt.Errorf("job %s: %w", j, err)
	}
	return res, churn, err
}

// runTask resolves one unique cell: durable-store probe first, then
// simulation with the retry policy. fromStore reports that the result
// was loaded rather than computed (so it must not be written back).
func (e *Engine) runTask(ctx context.Context, t *task) (res sim.Result, churn sim.ChurnStats, fromStore bool, err error) {
	if e.store != nil && !e.disableCache {
		if data, ok := e.store.Load(t.key); ok {
			if c, ok := decodeEntry(data); ok {
				e.mu.Lock()
				e.stats.StoreHits++
				e.mu.Unlock()
				return c.res, c.churn, true, nil
			}
		}
	}
	job := t.job
	if e.probe != nil && job.Config.Probe == nil {
		job.Config.Probe = e.probe(job)
	}
	for attempt := 1; ; attempt++ {
		res, churn, err = e.safeRun(ctx, job, t.key, attempt)
		if err == nil || attempt >= e.retry.MaxAttempts || IsPermanent(err) {
			return res, churn, false, err
		}
		e.mu.Lock()
		e.stats.Retries++
		e.mu.Unlock()
		if !e.sleep(ctx, e.retry.delay(t.key, attempt)) {
			return res, churn, false, ctx.Err()
		}
	}
}

// task is one unique simulation of a batch, fanned out to every job
// position that shares its key.
type task struct {
	job       Job
	key       string
	positions []int
}

// Run executes the jobs and returns their results in input order,
// regardless of completion order. Jobs whose key is already cached (or
// duplicated within the batch) are served without re-simulation.
//
// The returned error is nil only if every job succeeded: it is the
// context's error after cancellation, or an aggregate naming the failed
// jobs otherwise. Per-job outcomes — including per-job errors — are
// always available in the result slice.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	return e.RunWithProgress(ctx, jobs, e.progress)
}

// RunWithProgress is Run with a per-call progress observer replacing the
// engine-wide one — the hook a server needs when one long-lived engine
// executes many independently tracked sweeps. A nil progress disables
// reporting for this call only.
func (e *Engine) RunWithProgress(ctx context.Context, jobs []Job, progress ProgressFunc) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(jobs))
	total := len(jobs)
	if total == 0 {
		return results, nil
	}

	// Progress calls are serialized; done counts job positions, so it
	// reaches total even when many positions share one simulation.
	var progressMu sync.Mutex
	var done int
	report := func(positions ...int) {
		if progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		for _, i := range positions {
			done++
			progress(done, total, results[i].Job)
		}
	}

	// Plan sequentially: resolve cache hits, coalesce duplicate keys.
	// Planning under the lock keeps hit/miss counting deterministic.
	var tasks []*task
	var hits []int
	e.mu.Lock()
	e.stats.Jobs += total
	byKey := make(map[string]*task)
	for i, j := range jobs {
		j.Config = j.Config.WithDefaults()
		results[i].Job = j
		// The key is computed even with caching disabled: retry jitter
		// and fault injection are both keyed by it.
		key := j.Key()
		if e.disableCache {
			e.stats.Misses++
			tasks = append(tasks, &task{job: j, key: key, positions: []int{i}})
			continue
		}
		if c, ok := e.cache[key]; ok {
			e.stats.Hits++
			results[i].Res, results[i].Churn, results[i].Cached = c.res, c.churn, true
			hits = append(hits, i)
			continue
		}
		if t, ok := byKey[key]; ok {
			e.stats.Hits++
			results[i].Cached = true
			t.positions = append(t.positions, i)
			continue
		}
		e.stats.Misses++
		t := &task{job: j, key: key, positions: []int{i}}
		byKey[key] = t
		tasks = append(tasks, t)
	}
	e.mu.Unlock()
	report(hits...)

	workers := e.parallelism
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(tasks) {
					return
				}
				t := tasks[n]
				if err := ctx.Err(); err != nil {
					// Drain the queue, marking unstarted jobs cancelled.
					for _, i := range t.positions {
						results[i].Err = err
					}
					report(t.positions...)
					continue
				}
				res, churn, fromStore, err := e.runTask(ctx, t)
				if err == nil && !e.disableCache {
					e.mu.Lock()
					e.cache[t.key] = cached{res: res, churn: churn}
					e.mu.Unlock()
					if !fromStore && e.store != nil {
						e.writeThrough(t.key, cached{res: res, churn: churn})
					}
				}
				for _, i := range t.positions {
					results[i].Res, results[i].Churn, results[i].Err = res, churn, err
					if fromStore {
						results[i].Cached = true
					}
				}
				report(t.positions...)
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, failures(results)
}

// writeThrough persists one fresh result to the durable store,
// degrading to memory-only (with the error counted) on failure — a
// full disk must not fail the sweep.
func (e *Engine) writeThrough(key string, c cached) {
	data, err := encodeEntry(c)
	if err == nil {
		err = e.store.Save(key, data)
	}
	if err != nil {
		e.mu.Lock()
		e.stats.StoreErrors++
		e.mu.Unlock()
	}
}

// failures aggregates per-job errors into one error naming the failed
// jobs (nil when everything succeeded). Every distinct error message is
// included via errors.Join — coalesced duplicates (positions sharing a
// failed cell) are reported once — so a multi-cell failure is fully
// diagnosable from the returned error alone.
func failures(results []Result) error {
	var errs []error
	seen := make(map[string]bool)
	n := 0
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		n++
		if msg := r.Err.Error(); !seen[msg] {
			seen[msg] = true
			errs = append(errs, r.Err)
		}
	}
	if n == 0 {
		return nil
	}
	if n == 1 {
		return fmt.Errorf("sweep: %w", errs[0])
	}
	return fmt.Errorf("sweep: %d of %d jobs failed: %w", n, len(results), errors.Join(errs...))
}

// Results unwraps a result slice into the bare simulation results,
// dropping per-job metadata. It must only be called on an error-free
// sweep.
func Results(rs []Result) []sim.Result {
	out := make([]sim.Result, len(rs))
	for i, r := range rs {
		out[i] = r.Res
	}
	return out
}
