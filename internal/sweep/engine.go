package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hybridtlb/internal/sim"
)

// ProgressFunc observes sweep completion: done jobs out of total in the
// current batch, and the job that just finished. Calls are serialized by
// the engine, so implementations need no locking of their own; they must
// not block for long, since they run on the worker hot path.
type ProgressFunc func(done, total int, job Job)

// Options configures an Engine.
type Options struct {
	// Parallelism bounds concurrently running simulations
	// (0: runtime.GOMAXPROCS(0)).
	Parallelism int
	// Progress, when non-nil, is invoked as jobs complete.
	Progress ProgressFunc
	// DisableCache turns off result memoization; every job is simulated,
	// including duplicates within one batch.
	DisableCache bool
}

// CacheStats counts the engine's cache traffic across its lifetime.
type CacheStats struct {
	// Jobs is the total number of jobs submitted.
	Jobs int
	// Hits counts jobs served without a new simulation: either from the
	// cache of an earlier batch or coalesced with an identical job in
	// the same batch.
	Hits int
	// Misses counts jobs that actually simulated.
	Misses int
}

// cached is one memoized job outcome. Failed jobs are never cached.
type cached struct {
	res   sim.Result
	churn sim.ChurnStats
}

// Engine executes sweep jobs on a bounded worker pool with a
// content-addressed result cache. An Engine is safe for concurrent use
// and is typically shared across experiments so common cells (the base
// scheme, static-ideal probes) are computed once per process.
//
// Cached sim.Result values are shared between the jobs they serve;
// callers must treat results (including the AnchorActions map) as
// read-only.
type Engine struct {
	parallelism  int
	progress     ProgressFunc
	disableCache bool

	// runJob is the execution function; tests substitute it to inject
	// panics, blocking and completion-order inversions.
	runJob func(Job) (sim.Result, sim.ChurnStats, error)

	mu    sync.Mutex
	cache map[string]cached
	stats CacheStats
}

// New creates an engine.
func New(opts Options) *Engine {
	p := opts.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		parallelism:  p,
		progress:     opts.Progress,
		disableCache: opts.DisableCache,
		runJob:       execute,
		cache:        make(map[string]cached),
	}
}

// Stats returns the engine's cumulative cache statistics.
func (e *Engine) Stats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// execute runs one job.
func execute(j Job) (res sim.Result, churn sim.ChurnStats, err error) {
	if j.ChurnIntervalInstructions != 0 || j.ChurnPages != 0 {
		return sim.RunWithChurn(sim.ChurnConfig{
			Config:                    j.Config,
			ChurnIntervalInstructions: j.ChurnIntervalInstructions,
			ChurnPages:                j.ChurnPages,
		})
	}
	res, err = sim.Run(j.Config)
	return res, sim.ChurnStats{}, err
}

// safeRun executes one job, converting a panic anywhere in the
// simulator into a per-job error naming the job, so one failing cell
// cannot kill the sweep.
func (e *Engine) safeRun(j Job) (res sim.Result, churn sim.ChurnStats, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("job %s: panic: %v", j, p)
		}
	}()
	res, churn, err = e.runJob(j)
	if err != nil {
		err = fmt.Errorf("job %s: %w", j, err)
	}
	return res, churn, err
}

// task is one unique simulation of a batch, fanned out to every job
// position that shares its key.
type task struct {
	job       Job
	key       string
	positions []int
}

// Run executes the jobs and returns their results in input order,
// regardless of completion order. Jobs whose key is already cached (or
// duplicated within the batch) are served without re-simulation.
//
// The returned error is nil only if every job succeeded: it is the
// context's error after cancellation, or an aggregate naming the failed
// jobs otherwise. Per-job outcomes — including per-job errors — are
// always available in the result slice.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	return e.RunWithProgress(ctx, jobs, e.progress)
}

// RunWithProgress is Run with a per-call progress observer replacing the
// engine-wide one — the hook a server needs when one long-lived engine
// executes many independently tracked sweeps. A nil progress disables
// reporting for this call only.
func (e *Engine) RunWithProgress(ctx context.Context, jobs []Job, progress ProgressFunc) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(jobs))
	total := len(jobs)
	if total == 0 {
		return results, nil
	}

	// Progress calls are serialized; done counts job positions, so it
	// reaches total even when many positions share one simulation.
	var progressMu sync.Mutex
	var done int
	report := func(positions ...int) {
		if progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		for _, i := range positions {
			done++
			progress(done, total, results[i].Job)
		}
	}

	// Plan sequentially: resolve cache hits, coalesce duplicate keys.
	// Planning under the lock keeps hit/miss counting deterministic.
	var tasks []*task
	var hits []int
	e.mu.Lock()
	e.stats.Jobs += total
	byKey := make(map[string]*task)
	for i, j := range jobs {
		j.Config = j.Config.WithDefaults()
		results[i].Job = j
		if e.disableCache {
			e.stats.Misses++
			tasks = append(tasks, &task{job: j, positions: []int{i}})
			continue
		}
		key := j.Key()
		if c, ok := e.cache[key]; ok {
			e.stats.Hits++
			results[i].Res, results[i].Churn, results[i].Cached = c.res, c.churn, true
			hits = append(hits, i)
			continue
		}
		if t, ok := byKey[key]; ok {
			e.stats.Hits++
			results[i].Cached = true
			t.positions = append(t.positions, i)
			continue
		}
		e.stats.Misses++
		t := &task{job: j, key: key, positions: []int{i}}
		byKey[key] = t
		tasks = append(tasks, t)
	}
	e.mu.Unlock()
	report(hits...)

	workers := e.parallelism
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(tasks) {
					return
				}
				t := tasks[n]
				if err := ctx.Err(); err != nil {
					// Drain the queue, marking unstarted jobs cancelled.
					for _, i := range t.positions {
						results[i].Err = err
					}
					report(t.positions...)
					continue
				}
				res, churn, err := e.safeRun(t.job)
				if err == nil && !e.disableCache {
					e.mu.Lock()
					e.cache[t.key] = cached{res: res, churn: churn}
					e.mu.Unlock()
				}
				for _, i := range t.positions {
					results[i].Res, results[i].Churn, results[i].Err = res, churn, err
				}
				report(t.positions...)
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, failures(results)
}

// failures aggregates per-job errors into one error naming the failed
// jobs (nil when everything succeeded).
func failures(results []Result) error {
	var first error
	n := 0
	for _, r := range results {
		if r.Err != nil {
			if first == nil {
				first = r.Err
			}
			n++
		}
	}
	if first == nil {
		return nil
	}
	if n == 1 {
		return fmt.Errorf("sweep: %w", first)
	}
	return fmt.Errorf("sweep: %d of %d jobs failed, first: %w", n, len(results), first)
}

// Results unwraps a result slice into the bare simulation results,
// dropping per-job metadata. It must only be called on an error-free
// sweep.
func Results(rs []Result) []sim.Result {
	out := make([]sim.Result, len(rs))
	for i, r := range rs {
		out[i] = r.Res
	}
	return out
}
