package pagetable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridtlb/internal/mem"
)

func TestPTEBitPacking(t *testing.T) {
	var e PTE
	e = (FlagPresent | FlagWrite).WithPFN(0x123456789).WithIgn(0x5aa)
	if !e.Present() {
		t.Error("present bit lost")
	}
	if e.Huge() {
		t.Error("huge bit set spuriously")
	}
	if e.PFN() != 0x123456789 {
		t.Errorf("PFN = %#x", uint64(e.PFN()))
	}
	if e.Ign() != 0x5aa {
		t.Errorf("Ign = %#x", e.Ign())
	}
	if e.Flags() != FlagPresent|FlagWrite {
		t.Errorf("Flags = %#x", uint64(e.Flags()))
	}
	// Fields must be independent.
	e = e.WithIgn(0)
	if e.PFN() != 0x123456789 || !e.Present() {
		t.Error("WithIgn clobbered other fields")
	}
	e = e.WithPFN(0)
	if e.Ign() != 0 || !e.Present() {
		t.Error("WithPFN clobbered other fields")
	}
}

func TestPTEFieldIsolationProperty(t *testing.T) {
	f := func(pfnRaw, ignRaw uint64, flagsRaw uint8) bool {
		pfn := mem.PFN(pfnRaw & ((1 << 40) - 1))
		ign := ignRaw & ((1 << IgnBits) - 1)
		flags := PTE(flagsRaw) & FlagMask
		e := flags.WithPFN(pfn).WithIgn(ign)
		return e.PFN() == pfn && e.Ign() == ign && e.Flags() == flags
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMap4KWalk(t *testing.T) {
	pt := New()
	pt.Map4K(0x12345, 0x777, FlagWrite)
	w := pt.Walk(0x12345)
	if !w.Present || w.PFN != 0x777 || w.Class != mem.Class4K {
		t.Fatalf("walk = %+v", w)
	}
	if w.Levels != 4 {
		t.Errorf("levels = %d, want 4", w.Levels)
	}
	if w.BaseVPN != 0x12345 || w.BasePFN != 0x777 {
		t.Errorf("base = %#x/%#x", uint64(w.BaseVPN), uint64(w.BasePFN))
	}
	if got := pt.Walk(0x12346); got.Present {
		t.Error("unmapped neighbour resolved")
	}
}

func TestMap2MWalk(t *testing.T) {
	pt := New()
	if err := pt.Map2M(512, 1024, FlagWrite); err != nil {
		t.Fatal(err)
	}
	// Any VPN inside the huge page translates with the offset applied.
	w := pt.Walk(512 + 77)
	if !w.Present || w.Class != mem.Class2M {
		t.Fatalf("walk = %+v", w)
	}
	if w.PFN != 1024+77 {
		t.Errorf("PFN = %d, want %d", w.PFN, 1024+77)
	}
	if w.BaseVPN != 512 || w.BasePFN != 1024 {
		t.Errorf("base = %d/%d", w.BaseVPN, w.BasePFN)
	}
	if w.Levels != 3 {
		t.Errorf("levels = %d, want 3 (PD leaf)", w.Levels)
	}
}

func TestMap2MValidation(t *testing.T) {
	pt := New()
	if err := pt.Map2M(5, 512, 0); err == nil {
		t.Error("unaligned vpn accepted")
	}
	if err := pt.Map2M(512, 5, 0); err == nil {
		t.Error("unaligned pfn accepted")
	}
	pt.Map4K(1024, 1, 0)
	if err := pt.Map2M(1024, 2048, 0); err == nil {
		t.Error("2M mapping over existing 4K table accepted")
	}
}

func TestUnmap(t *testing.T) {
	pt := New()
	pt.Map4K(100, 200, 0)
	if !pt.Unmap(100) {
		t.Error("unmap of mapped page failed")
	}
	if pt.Unmap(100) {
		t.Error("double unmap succeeded")
	}
	if pt.Walk(100).Present {
		t.Error("page still present after unmap")
	}

	if err := pt.Map2M(1024, 2048, 0); err != nil {
		t.Fatal(err)
	}
	if !pt.Unmap(1024 + 33) { // any vpn inside the huge page
		t.Error("unmap of 2M page failed")
	}
	if pt.Walk(1024).Present {
		t.Error("2M page still present after unmap")
	}
	if pt.Unmap(1 << 30) {
		t.Error("unmap of never-mapped region succeeded")
	}
}

func TestWalkMatchesMappingProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		pt := New()
		want := make(map[mem.VPN]mem.PFN)
		for i, s := range seeds {
			vpn := mem.VPN(s % (1 << 24))
			pfn := mem.PFN(i + 1)
			pt.Map4K(vpn, pfn, FlagWrite)
			want[vpn] = pfn
		}
		for vpn, pfn := range want {
			w := pt.Walk(vpn)
			if !w.Present || w.PFN != pfn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRangeOrderAndCoverage(t *testing.T) {
	pt := New()
	vpns := []mem.VPN{5, 1 << 20, 3, 512 * 7, 1<<20 + 1}
	for i, v := range vpns {
		pt.Map4K(v, mem.PFN(1000+i), 0)
	}
	if err := pt.Map2M(1<<21, 1<<22, 0); err != nil {
		t.Fatal(err)
	}
	var got []mem.VPN
	var classes []mem.PageClass
	pt.Range(func(v mem.VPN, e PTE, c mem.PageClass) bool {
		got = append(got, v)
		classes = append(classes, c)
		return true
	})
	want := []mem.VPN{3, 5, 512 * 7, 1 << 20, 1<<20 + 1, 1 << 21}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %#x, want %#x", i, uint64(got[i]), uint64(want[i]))
		}
	}
	if classes[5] != mem.Class2M {
		t.Errorf("last entry class = %v, want 2M", classes[5])
	}
	// Early termination.
	count := 0
	pt.Range(func(mem.VPN, PTE, mem.PageClass) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop visited %d entries, want 2", count)
	}
}

func TestAnchorContiguityRoundTrip(t *testing.T) {
	pt := New()
	for i := mem.VPN(0); i < 64; i++ {
		pt.Map4K(i, 100+mem.PFN(i), 0)
	}
	// Distance 16 (>= 8): distributed encoding, values beyond 1024 work.
	for _, c := range []uint64{1, 2, 7, 1024, 4000, 65536} {
		pt.SetAnchorContiguity(16, 16, c)
		if got := pt.AnchorContiguity(16, 16); got != c {
			t.Errorf("round trip c=%d got %d", c, got)
		}
	}
	// Beyond max caps.
	pt.SetAnchorContiguity(16, 16, MaxContiguity+5)
	if got := pt.AnchorContiguity(16, 16); got != MaxContiguity {
		t.Errorf("cap: got %d, want %d", got, MaxContiguity)
	}
	// Distance 4 (< 8): single-entry encoding caps at MaxContiguitySingle.
	pt.SetAnchorContiguity(4, 4, 3)
	if got := pt.AnchorContiguity(4, 4); got != 3 {
		t.Errorf("d=4 c=3 got %d", got)
	}
	pt.SetAnchorContiguity(4, 4, MaxContiguitySingle+1)
	if got := pt.AnchorContiguity(4, 4); got != MaxContiguitySingle {
		t.Errorf("single cap: got %d, want %d", got, MaxContiguitySingle)
	}
	// Clearing.
	pt.SetAnchorContiguity(16, 16, 0)
	if got := pt.AnchorContiguity(16, 16); got != 0 {
		t.Errorf("clear: got %d", got)
	}
}

func TestAnchorContiguityZeroVsOne(t *testing.T) {
	pt := New()
	pt.Map4K(0, 1, 0)
	pt.Map4K(8, 9, 0)
	if got := pt.AnchorContiguity(8, 8); got != 0 {
		t.Errorf("unwritten anchor = %d, want 0", got)
	}
	pt.SetAnchorContiguity(8, 8, 1)
	if got := pt.AnchorContiguity(8, 8); got != 1 {
		t.Errorf("contiguity 1 = %d", got)
	}
}

func TestAnchorArgValidation(t *testing.T) {
	pt := New()
	for _, fn := range []func(){
		func() { pt.SetAnchorContiguity(3, 4, 1) }, // misaligned
		func() { pt.SetAnchorContiguity(0, 3, 1) }, // non-pow2 distance
		func() { pt.AnchorContiguity(1, 2) },       // misaligned
		func() { pt.AnchorContiguity(0, 1) },       // distance < 2
		func() { pt.ComputeContiguity(5, 4) },      // misaligned
		func() { pt.SweepAnchors(7, func(mem.VPN) uint64 { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAnchorOnMissingNode(t *testing.T) {
	pt := New()
	if w := pt.SetAnchorContiguity(1<<30, 8, 5); w != 0 {
		t.Errorf("writes on missing node = %d", w)
	}
	if got := pt.AnchorContiguity(1<<30, 8); got != 0 {
		t.Errorf("contiguity on missing node = %d", got)
	}
}

func TestComputeContiguity(t *testing.T) {
	pt := New()
	// 12 contiguous pages starting at VPN 0, then a physical gap.
	for i := mem.VPN(0); i < 12; i++ {
		pt.Map4K(i, 100+mem.PFN(i), 0)
	}
	pt.Map4K(12, 500, 0) // physically discontiguous
	pt.Map4K(13, 501, 0)
	if got := pt.ComputeContiguity(0, 8); got != 12 {
		t.Errorf("contiguity at 0 = %d, want 12", got)
	}
	if got := pt.ComputeContiguity(8, 8); got != 4 {
		t.Errorf("contiguity at 8 = %d, want 4", got)
	}
	// Anchor page unmapped -> 0.
	if got := pt.ComputeContiguity(16, 8); got != 0 {
		t.Errorf("contiguity at unmapped = %d, want 0", got)
	}
	// A hole terminates the run.
	pt.Map4K(24, 700, 0)
	pt.Map4K(26, 702, 0)
	if got := pt.ComputeContiguity(24, 8); got != 1 {
		t.Errorf("contiguity across hole = %d, want 1", got)
	}
	// 2 MiB page terminates the 4K run.
	for i := mem.VPN(504); i < 512; i++ {
		pt.Map4K(i, mem.PFN(i)+1000, 0)
	}
	if err := pt.Map2M(512, 1536, 0); err != nil {
		t.Fatal(err)
	}
	if got := pt.ComputeContiguity(504, 8); got != 8 {
		t.Errorf("contiguity into 2M page = %d, want 8", got)
	}
}

func TestSweepAnchors(t *testing.T) {
	pt := New()
	// 64 contiguous pages at VPN 0.
	for i := mem.VPN(0); i < 64; i++ {
		pt.Map4K(i, mem.PFN(i)+4096, 0)
	}
	res := pt.SweepAnchors(16, func(avpn mem.VPN) uint64 {
		return pt.ComputeContiguity(avpn, 16)
	})
	if res.AnchorsVisited != 4 {
		t.Errorf("anchors visited = %d, want 4", res.AnchorsVisited)
	}
	if res.PTEWrites != 8 { // distributed encoding writes 2 entries each
		t.Errorf("PTE writes = %d, want 8", res.PTEWrites)
	}
	if res.EntriesScanned != 64 {
		t.Errorf("entries scanned = %d, want 64", res.EntriesScanned)
	}
	for a := mem.VPN(0); a < 64; a += 16 {
		want := uint64(64 - a)
		if got := pt.AnchorContiguity(a, 16); got != want {
			t.Errorf("anchor %d contiguity = %d, want %d", a, got, want)
		}
	}
	// Re-sweeping with a larger distance visits fewer anchors.
	res2 := pt.SweepAnchors(32, func(avpn mem.VPN) uint64 {
		return pt.ComputeContiguity(avpn, 32)
	})
	if res2.AnchorsVisited != 2 {
		t.Errorf("anchors visited at d=32: %d, want 2", res2.AnchorsVisited)
	}
	if got := pt.AnchorContiguity(0, 32); got != 64 {
		t.Errorf("anchor 0 at d=32 = %d, want 64", got)
	}
}

func TestMapPreservesAnchorBits(t *testing.T) {
	pt := New()
	pt.Map4K(0, 100, 0)
	pt.SetAnchorContiguity(0, 8, 9)
	pt.Map4K(0, 200, FlagWrite) // remap must keep the OS contiguity bits
	if got := pt.AnchorContiguity(0, 8); got != 9 {
		t.Errorf("anchor bits after remap = %d, want 9", got)
	}
	if pt.Walk(0).PFN != 200 {
		t.Error("remap did not update frame")
	}
}

func TestStatsAccounting(t *testing.T) {
	pt := New()
	pt.Map4K(0, 1, 0)
	pt.Map4K(1, 2, 0)
	pt.Walk(0)
	pt.Walk(1)
	pt.Walk(99)
	s := pt.Stats()
	if s.Walks != 3 {
		t.Errorf("walks = %d, want 3", s.Walks)
	}
	if s.PTEWrites != 2 {
		t.Errorf("writes = %d, want 2", s.PTEWrites)
	}
	if s.Nodes != 4 { // root + 3 interior/leaf nodes for one path
		t.Errorf("nodes = %d, want 4", s.Nodes)
	}
}

func TestRandomMappingWalkEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pt := New()
	ref := make(map[mem.VPN]mem.PFN)
	for i := 0; i < 3000; i++ {
		vpn := mem.VPN(r.Intn(1 << 22))
		switch r.Intn(3) {
		case 0, 1:
			pfn := mem.PFN(r.Intn(1 << 20))
			pt.Map4K(vpn, pfn, 0)
			ref[vpn] = pfn
		case 2:
			pt.Unmap(vpn)
			delete(ref, vpn)
		}
	}
	for vpn, pfn := range ref {
		w := pt.Walk(vpn)
		if !w.Present || w.PFN != pfn {
			t.Fatalf("walk(%#x) = %+v, want pfn %#x", uint64(vpn), w, uint64(pfn))
		}
	}
	// Spot-check absent VPNs.
	for i := 0; i < 1000; i++ {
		vpn := mem.VPN(r.Intn(1 << 22))
		if _, ok := ref[vpn]; ok {
			continue
		}
		if pt.Walk(vpn).Present {
			t.Fatalf("walk(%#x) present, want absent", uint64(vpn))
		}
	}
}

func BenchmarkWalk4K(b *testing.B) {
	pt := New()
	for i := mem.VPN(0); i < 1<<16; i++ {
		pt.Map4K(i, mem.PFN(i), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Walk(mem.VPN(i) & (1<<16 - 1))
	}
}

func BenchmarkSweepAnchors(b *testing.B) {
	pt := New()
	for i := mem.VPN(0); i < 1<<16; i++ {
		pt.Map4K(i, mem.PFN(i), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.SweepAnchors(64, func(avpn mem.VPN) uint64 { return 64 })
	}
}

func TestMap1G(t *testing.T) {
	pt := New()
	if err := pt.Map1G(5, 0, 0); err == nil {
		t.Error("unaligned 1G vpn accepted")
	}
	if err := pt.Map1G(mem.VPN(mem.PagesPer1G), 7, 0); err == nil {
		t.Error("unaligned 1G pfn accepted")
	}
	base := mem.VPN(mem.PagesPer1G)
	if err := pt.Map1G(base, mem.PFN(4*mem.PagesPer1G), FlagWrite); err != nil {
		t.Fatal(err)
	}
	w := pt.Walk(base + 123456)
	if !w.Present || w.Class != mem.Class1G {
		t.Fatalf("walk = %+v", w)
	}
	if w.PFN != mem.PFN(4*mem.PagesPer1G)+123456 {
		t.Errorf("PFN = %#x", uint64(w.PFN))
	}
	if w.Levels != 2 {
		t.Errorf("levels = %d, want 2 (PDPT leaf)", w.Levels)
	}
	// Overlap with existing 4K tables is rejected.
	pt2 := New()
	pt2.Map4K(base+5, 1, 0)
	if err := pt2.Map1G(base, 0, 0); err == nil {
		t.Error("1G over 4K table accepted")
	}
	// Range reports it once; Unmap removes the whole page.
	count := 0
	pt.Range(func(v mem.VPN, e PTE, c mem.PageClass) bool {
		count++
		if v != base || c != mem.Class1G {
			t.Errorf("range entry %v class %v", v, c)
		}
		return true
	})
	if count != 1 {
		t.Errorf("range saw %d entries", count)
	}
	if lines := pt.WalkLines(base + 99); len(lines) != 2 {
		t.Errorf("walk lines = %d, want 2", len(lines))
	}
	if !pt.Unmap(base + 77) {
		t.Error("1G unmap failed")
	}
	if pt.Walk(base).Present {
		t.Error("1G page survived unmap")
	}
}

func TestCollapse2M(t *testing.T) {
	pt := New()
	for i := mem.VPN(0); i < 512; i++ {
		pt.Map4K(i, 1024+mem.PFN(i), 0)
	}
	nodesBefore := pt.Stats().Nodes
	if err := pt.Collapse2M(0, 1024, FlagWrite); err != nil {
		t.Fatal(err)
	}
	w := pt.Walk(100)
	if !w.Present || w.Class != mem.Class2M || w.PFN != 1124 {
		t.Fatalf("walk = %+v", w)
	}
	if pt.Stats().Nodes != nodesBefore-1 {
		t.Errorf("leaf table not freed: %d -> %d nodes", nodesBefore, pt.Stats().Nodes)
	}
	if err := pt.Collapse2M(0, 1024, 0); err == nil {
		t.Error("double collapse accepted")
	}
	if err := pt.Collapse2M(5, 1024, 0); err == nil {
		t.Error("unaligned collapse accepted")
	}
	if err := pt.Collapse2M(1<<30, 0, 0); err == nil {
		t.Error("collapse of absent table accepted")
	}
}

// TestWalkFastMatchesWalk pins the unrolled hot-path walk to the
// reference Walk over a mixed table: 4 KiB pages, 2 MiB pages, and
// unmapped holes, probed at bases, interiors, and misses.
func TestWalkFastMatchesWalk(t *testing.T) {
	pt := New()
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		vpn := mem.VPN(r.Uint64() % (1 << 24))
		pt.Map4K(vpn, mem.PFN(i+1), FlagWrite)
	}
	for i := 0; i < 8; i++ {
		vpn := mem.VPN(uint64(i+32) << 9)
		if err := pt.Map2M(vpn, mem.PFN(uint64(i+64)<<9), FlagWrite); err != nil {
			t.Fatal(err)
		}
	}
	walksBefore := pt.Stats().Walks
	probes := 0
	for i := 0; i < 5_000; i++ {
		vpn := mem.VPN(r.Uint64() % (1 << 25))
		w := pt.Walk(vpn)
		pfn, class, baseVPN, basePFN, present := pt.WalkFast(vpn)
		probes += 2
		if present != w.Present {
			t.Fatalf("vpn %#x: present %v, Walk said %v", uint64(vpn), present, w.Present)
		}
		if !present {
			if pfn != 0 || baseVPN != 0 || basePFN != 0 {
				t.Fatalf("vpn %#x: non-zero fields on miss", uint64(vpn))
			}
			continue
		}
		if pfn != w.PFN || class != w.Class || baseVPN != w.BaseVPN || basePFN != w.BasePFN {
			t.Fatalf("vpn %#x: WalkFast (%#x %v %#x %#x) != Walk (%#x %v %#x %#x)",
				uint64(vpn), uint64(pfn), class, uint64(baseVPN), uint64(basePFN),
				uint64(w.PFN), w.Class, uint64(w.BaseVPN), uint64(w.BasePFN))
		}
	}
	if got := pt.Stats().Walks - walksBefore; got != uint64(probes) {
		t.Errorf("Walks counter advanced %d, want %d (WalkFast must account like Walk)", got, probes)
	}
}
