package pagetable

import (
	"fmt"

	"hybridtlb/internal/mem"
)

// Anchor contiguity encoding (Section 3.1 and Figure 4).
//
// The contiguity value of an anchor entry counts how many pages starting at
// the anchor (including the anchor page itself) are mapped to physically
// contiguous frames. Following the paper's footnote, the stored field is
// contiguity-1 so that a w-bit field represents contiguities 1..2^w.
//
// For anchor distances >= 8 the anchor is always the first entry of its
// 64-byte PTE cache block, and the encoding is distributed: the low IgnBits
// bits live in the anchor entry's ignored field and the remaining bits in
// the ignored field of the next entry of the same cache block, which the
// walker fetches at no extra memory cost. For distances < 8 only the anchor
// entry's own ignored bits are available.
const (
	// ContiguityBits is the total contiguity field width used throughout
	// the evaluation ("we use 16 bits ... maximum contiguity of 2^16").
	ContiguityBits = 16
	// MaxContiguity is the largest representable contiguity (in pages)
	// with the distributed encoding.
	MaxContiguity = 1 << ContiguityBits

	// anchorValidBit marks an anchor entry whose contiguity field is
	// meaningful; it distinguishes "contiguity 1" from "no anchor info".
	anchorValidBit = 1 << (IgnBits - 1)
	// anchorPayloadBits is the contiguity payload width within the anchor
	// entry itself (its ignored bits minus the valid bit).
	anchorPayloadBits = IgnBits - 1
	// MaxContiguitySingle is the largest contiguity representable within
	// a single entry's ignored bits (used when the anchor distance < 8).
	MaxContiguitySingle = 1 << anchorPayloadBits
)

// contiguityCap returns the representable contiguity limit for a distance.
func contiguityCap(dist uint64) uint64 {
	if dist >= EntriesPerCacheBlock {
		return MaxContiguity
	}
	return MaxContiguitySingle
}

// checkAnchorArgs validates the (avpn, dist) pair shared by the anchor
// accessors.
func checkAnchorArgs(avpn mem.VPN, dist uint64) {
	if !mem.IsPow2(dist) || dist < 2 {
		panic(fmt.Sprintf("pagetable: anchor distance %d is not a power of two >= 2", dist))
	}
	if !avpn.IsAligned(dist) {
		panic(fmt.Sprintf("pagetable: VPN %#x is not aligned to anchor distance %d", uint64(avpn), dist))
	}
}

// SetAnchorContiguity records that contiguity pages starting at avpn are
// physically contiguous. avpn must be aligned to dist. A contiguity of 0
// (anchor page itself unmapped or not usable) clears the field. Values
// beyond the encoding capacity are capped.
//
// It returns the number of PTEs written, which feeds the distance-change
// cost model of Section 3.3.
func (t *Table) SetAnchorContiguity(avpn mem.VPN, dist, contiguity uint64) int {
	checkAnchorArgs(avpn, dist)
	n := t.leafNode(avpn)
	if n == nil {
		return 0
	}
	if cap := contiguityCap(dist); contiguity > cap {
		contiguity = cap
	}
	i := indexAt(avpn, LevelPT)
	writes := 0
	var low, high uint64
	if contiguity > 0 {
		stored := contiguity - 1 // footnote encoding: field holds c-1
		low = stored&(MaxContiguitySingle-1) | anchorValidBit
		high = stored >> anchorPayloadBits
	}
	n.pte[i] = n.pte[i].WithIgn(low)
	writes++
	if dist >= EntriesPerCacheBlock {
		// Distributed encoding: the next entry of the same cache block
		// holds the high bits. i is block-aligned, so i+1 is in range.
		n.pte[i+1] = n.pte[i+1].WithIgn(high)
		writes++
	}
	t.stats.PTEWrites += uint64(writes)
	return writes
}

// AnchorContiguity reads the contiguity recorded at the anchor avpn for the
// given distance. It returns 0 when no contiguity is recorded (or the
// anchor's page table page does not exist).
func (t *Table) AnchorContiguity(avpn mem.VPN, dist uint64) uint64 {
	checkAnchorArgs(avpn, dist)
	n := t.leafNode(avpn)
	if n == nil {
		return 0
	}
	i := indexAt(avpn, LevelPT)
	low := n.pte[i].Ign()
	if low&anchorValidBit == 0 {
		return 0 // valid bit clear: no contiguity recorded
	}
	stored := low & (MaxContiguitySingle - 1)
	if dist >= EntriesPerCacheBlock {
		stored |= n.pte[i+1].Ign() << anchorPayloadBits
	}
	return stored + 1
}

// ComputeContiguity derives the true physical contiguity starting at avpn
// by scanning leaf entries: the length of the run of present 4 KiB entries
// whose frames increase by exactly one, capped at the encoding capacity for
// dist. This is the reference the OS uses when (re)writing anchors; reads
// are counted against the sweep cost model.
func (t *Table) ComputeContiguity(avpn mem.VPN, dist uint64) uint64 {
	checkAnchorArgs(avpn, dist)
	cap := contiguityCap(dist)
	w := t.Walk(avpn)
	t.stats.Walks-- // accounting: scans are not demand walks
	if !w.Present || w.Class != mem.Class4K {
		return 0
	}
	run := uint64(1)
	prev := w.PFN
	for run < cap {
		t.stats.PTEReads++
		w := t.Walk(avpn + mem.VPN(run))
		t.stats.Walks--
		if !w.Present || w.Class != mem.Class4K || w.PFN != prev+1 {
			break
		}
		prev = w.PFN
		run++
	}
	return run
}

// SweepResult reports the work performed by an anchor-distance sweep.
type SweepResult struct {
	AnchorsVisited uint64 // d-aligned present 4 KiB entries considered
	PTEWrites      uint64 // entries written (anchor + distributed halves)
	EntriesScanned uint64 // leaf entries read to locate anchors
}

// SweepAnchors rewrites every anchor entry for a new anchor distance,
// implementing the page-table update half of an anchor distance change
// (Section 3.3). contig supplies the contiguity for each anchor VPN —
// typically closed over the OS's chunk list so each anchor costs O(log
// chunks) rather than a page scan. The whole-table TLB invalidation that
// follows a sweep is the caller's (OS's) responsibility.
func (t *Table) SweepAnchors(dist uint64, contig func(avpn mem.VPN) uint64) SweepResult {
	if !mem.IsPow2(dist) || dist < 2 {
		panic(fmt.Sprintf("pagetable: anchor distance %d is not a power of two >= 2", dist))
	}
	var res SweepResult
	t.Range(func(vpn mem.VPN, e PTE, class mem.PageClass) bool {
		res.EntriesScanned++
		if class != mem.Class4K || !vpn.IsAligned(dist) {
			return true
		}
		res.AnchorsVisited++
		res.PTEWrites += uint64(t.SetAnchorContiguity(vpn, dist, contig(vpn)))
		return true
	})
	return res
}
