package pagetable

// Clone returns a deep copy of the table sharing no nodes with t. Shard
// simulators each walk a private copy: Walk/WalkFast bump the stats
// counters, so sharing one table across goroutines would race even though
// translations themselves are reads. Node phys addresses are preserved so
// the detailed walk model sees identical cache lines from a clone.
func (t *Table) Clone() *Table {
	return &Table{root: cloneNode(t.root), stats: t.stats}
}

func cloneNode(n *node) *node {
	c := &node{pte: n.pte, phys: n.phys}
	for i, ch := range n.child {
		if ch != nil {
			c.child[i] = cloneNode(ch)
		}
	}
	return c
}
