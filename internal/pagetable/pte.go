// Package pagetable implements an x86-64-style four-level radix page table
// extended with the paper's anchored page table design (Section 3.1):
// every N-th page table entry can act as an anchor entry whose otherwise
// ignored bits record how many pages following the anchor are contiguously
// mapped in physical memory.
//
// The PTE bit layout follows Figure 4 of the paper: a present bit and the
// usual permission/accessed/dirty flags in the low bits, the page frame
// number in bits [12,52), eleven OS-available ("ignored") bits in [52,63),
// and NX in bit 63. Contiguity values wider than eleven bits use the
// paper's distributed encoding: the extra bits are stored in the ignored
// bits of the next entry of the same 64-byte PTE cache block, which the
// walker fetches for free.
package pagetable

import (
	"fmt"

	"hybridtlb/internal/mem"
)

// PTE is a single page table entry in the x86-64 bit layout.
type PTE uint64

// PTE flag bits.
const (
	FlagPresent  PTE = 1 << 0 // P: translation is valid
	FlagWrite    PTE = 1 << 1 // R/W: writable
	FlagUser     PTE = 1 << 2 // U/S: user accessible
	FlagAccessed PTE = 1 << 5 // A: set by hardware on access
	FlagDirty    PTE = 1 << 6 // D: set by hardware on write
	FlagHuge     PTE = 1 << 7 // PS: leaf at PD/PDPT level (2 MiB / 1 GiB page)
	FlagNX       PTE = 1 << 63

	// FlagMask selects all architectural flag bits of a PTE.
	FlagMask = FlagPresent | FlagWrite | FlagUser | FlagAccessed | FlagDirty | FlagHuge | FlagNX
)

const (
	pfnShift = 12
	pfnBits  = 40 // bits [12,52): frame number of a 4 KiB-granular frame
	pfnMask  = ((PTE(1) << pfnBits) - 1) << pfnShift

	ignShift = 52
	// IgnBits is the number of OS-available bits per PTE ([52,63)), the
	// per-entry budget for storing anchor contiguity (Fig. 4).
	IgnBits = 11
	ignMask = ((PTE(1) << IgnBits) - 1) << ignShift
)

// Present reports whether the entry holds a valid translation.
func (e PTE) Present() bool { return e&FlagPresent != 0 }

// Huge reports whether the entry is a large-page leaf (PS bit).
func (e PTE) Huge() bool { return e&FlagHuge != 0 }

// PFN extracts the physical frame number.
func (e PTE) PFN() mem.PFN { return mem.PFN((e & pfnMask) >> pfnShift) }

// MaxPFN is the largest representable frame number: the PTE frame field
// spans bits [12,52), matching the paper's 2^52-byte physical address
// maximum (Fig. 4).
const MaxPFN mem.PFN = 1<<pfnBits - 1

// WithPFN returns the entry with its frame number replaced. It panics on
// frame numbers beyond the architectural field width — silent truncation
// would alias distinct frames.
func (e PTE) WithPFN(p mem.PFN) PTE {
	if p > MaxPFN {
		panic(fmt.Sprintf("pagetable: PFN %#x exceeds the %d-bit frame field", uint64(p), pfnBits))
	}
	return (e &^ pfnMask) | (PTE(p) << pfnShift & pfnMask)
}

// Ign extracts the OS-available ignored-bit field.
func (e PTE) Ign() uint64 { return uint64((e & ignMask) >> ignShift) }

// WithIgn returns the entry with the ignored-bit field replaced.
// Only the low IgnBits bits of v are stored.
func (e PTE) WithIgn(v uint64) PTE {
	return (e &^ ignMask) | (PTE(v) << ignShift & ignMask)
}

// Flags returns only the architectural flag bits.
func (e PTE) Flags() PTE { return e & FlagMask }
