package pagetable

import (
	"fmt"

	"hybridtlb/internal/mem"
)

// Level identifies a level of the 4-level radix tree, from the root down.
type Level int

// The four paging levels of classical x86-64 4-level paging.
const (
	LevelPML4 Level = iota
	LevelPDPT
	LevelPD
	LevelPT
	numLevels
)

// entriesPerNode is the radix of every level (512 8-byte entries per 4 KiB
// table page).
const entriesPerNode = 512

// EntriesPerCacheBlock is how many PTEs share one 64-byte cache block; the
// distributed contiguity encoding may span this many entries.
const EntriesPerCacheBlock = 8

// node is one 4 KiB page table page.
type node struct {
	pte   [entriesPerNode]PTE
	child [entriesPerNode]*node
	// phys is the synthetic physical address of this table page, used by
	// the detailed walk-latency model to derive the cache lines a
	// hardware walker would touch.
	phys mem.PhysAddr
}

// tableRegionBase is where page table pages live in the synthetic
// physical address space: a high region far above any mapped frame, so
// walker lines never alias workload data.
const tableRegionBase mem.PhysAddr = 1 << 46

// Stats counts page table maintenance work, used for the anchor-distance
// change cost model of Section 3.3.
type Stats struct {
	Nodes     uint64 // table pages allocated
	PTEWrites uint64 // leaf entry writes (map/unmap/anchor updates)
	PTEReads  uint64 // leaf entry reads during sweeps
	Walks     uint64 // full translations performed via Walk
}

// Table is a four-level page table supporting 4 KiB and 2 MiB mappings and
// the paper's anchor-entry contiguity encoding.
type Table struct {
	root  *node
	stats Stats
}

// New creates an empty page table.
func New() *Table {
	t := &Table{root: &node{}}
	t.stats.Nodes = 1
	t.root.phys = tableRegionBase
	return t
}

// Stats returns the accumulated maintenance counters.
func (t *Table) Stats() Stats { return t.stats }

// indexAt extracts the radix index of vpn at the given level.
// The VPN is a 4 KiB page number, so the PT index is its low 9 bits.
func indexAt(vpn mem.VPN, l Level) int {
	shift := uint(9 * (int(LevelPT) - int(l)))
	return int(uint64(vpn)>>shift) & (entriesPerNode - 1)
}

// ensurePath walks interior levels down to stop, allocating nodes.
func (t *Table) ensurePath(vpn mem.VPN, stop Level) *node {
	n := t.root
	for l := LevelPML4; l < stop; l++ {
		i := indexAt(vpn, l)
		if n.child[i] == nil {
			n.child[i] = &node{phys: tableRegionBase + mem.PhysAddr(t.stats.Nodes)*mem.PhysAddr(mem.Size4K)}
			n.pte[i] = FlagPresent | FlagWrite | FlagUser
			t.stats.Nodes++
		}
		n = n.child[i]
	}
	return n
}

// Map4K installs a 4 KiB mapping vpn -> pfn with the given flags.
// FlagPresent is implied.
func (t *Table) Map4K(vpn mem.VPN, pfn mem.PFN, flags PTE) {
	n := t.ensurePath(vpn, LevelPT)
	i := indexAt(vpn, LevelPT)
	// Preserve previously stored ignored bits (anchor contiguity written
	// before a neighbouring page was mapped).
	ign := n.pte[i].Ign()
	n.pte[i] = (flags & FlagMask &^ FlagHuge) | FlagPresent
	n.pte[i] = n.pte[i].WithPFN(pfn).WithIgn(ign)
	t.stats.PTEWrites++
}

// Map2M installs a 2 MiB mapping. vpn and pfn must be 512-page aligned.
func (t *Table) Map2M(vpn mem.VPN, pfn mem.PFN, flags PTE) error {
	if !vpn.IsAligned(mem.PagesPer2M) || !pfn.IsAligned(mem.PagesPer2M) {
		return fmt.Errorf("pagetable: unaligned 2M mapping vpn=%#x pfn=%#x", uint64(vpn), uint64(pfn))
	}
	n := t.ensurePath(vpn, LevelPD)
	i := indexAt(vpn, LevelPD)
	if n.child[i] != nil {
		return fmt.Errorf("pagetable: 2M mapping at vpn=%#x overlaps existing 4K table", uint64(vpn))
	}
	n.pte[i] = (flags & FlagMask) | FlagPresent | FlagHuge
	n.pte[i] = n.pte[i].WithPFN(pfn)
	t.stats.PTEWrites++
	return nil
}

// Map1G installs a 1 GiB mapping at the PDPT level. vpn and pfn must be
// 262144-page aligned. The paper's evaluation does not exercise 1 GiB
// pages (commercial parts give them a separate, smaller L2 TLB), but the
// substrate supports them for completeness.
func (t *Table) Map1G(vpn mem.VPN, pfn mem.PFN, flags PTE) error {
	if !vpn.IsAligned(mem.PagesPer1G) || !pfn.IsAligned(mem.PagesPer1G) {
		return fmt.Errorf("pagetable: unaligned 1G mapping vpn=%#x pfn=%#x", uint64(vpn), uint64(pfn))
	}
	n := t.ensurePath(vpn, LevelPDPT)
	i := indexAt(vpn, LevelPDPT)
	if n.child[i] != nil {
		return fmt.Errorf("pagetable: 1G mapping at vpn=%#x overlaps existing tables", uint64(vpn))
	}
	n.pte[i] = (flags & FlagMask) | FlagPresent | FlagHuge
	n.pte[i] = n.pte[i].WithPFN(pfn)
	t.stats.PTEWrites++
	return nil
}

// Collapse2M replaces the 4 KiB page table page covering base with a
// single 2 MiB mapping — huge-page promotion (khugepaged). base and pfn
// must be 512-page aligned and a 4 KiB table must exist there; its
// entries are discarded wholesale.
func (t *Table) Collapse2M(base mem.VPN, pfn mem.PFN, flags PTE) error {
	if !base.IsAligned(mem.PagesPer2M) || !pfn.IsAligned(mem.PagesPer2M) {
		return fmt.Errorf("pagetable: unaligned 2M collapse vpn=%#x pfn=%#x", uint64(base), uint64(pfn))
	}
	n := t.root
	for l := LevelPML4; l < LevelPD; l++ {
		i := indexAt(base, l)
		if n.child[i] == nil {
			return fmt.Errorf("pagetable: no table to collapse at vpn=%#x", uint64(base))
		}
		n = n.child[i]
	}
	i := indexAt(base, LevelPD)
	if n.child[i] == nil {
		return fmt.Errorf("pagetable: no 4K table under vpn=%#x", uint64(base))
	}
	n.child[i] = nil
	n.pte[i] = (flags & FlagMask) | FlagPresent | FlagHuge
	n.pte[i] = n.pte[i].WithPFN(pfn)
	t.stats.PTEWrites++
	t.stats.Nodes--
	return nil
}

// Unmap removes the mapping covering vpn (4 KiB entry, or the whole 2 MiB
// entry if vpn lies inside a huge page). It reports whether a mapping was
// removed.
func (t *Table) Unmap(vpn mem.VPN) bool {
	n := t.root
	for l := LevelPML4; l < LevelPT; l++ {
		i := indexAt(vpn, l)
		if (l == LevelPD || l == LevelPDPT) && n.pte[i].Present() && n.pte[i].Huge() {
			n.pte[i] = 0
			t.stats.PTEWrites++
			return true
		}
		if n.child[i] == nil {
			return false
		}
		n = n.child[i]
	}
	i := indexAt(vpn, LevelPT)
	if !n.pte[i].Present() {
		return false
	}
	// Clear the entry but keep nothing: contiguity bits of an unmapped
	// page are stale by definition and the OS rewrites anchors after
	// unmap (Section 3.3, "Updating Memory Mapping").
	n.pte[i] = 0
	t.stats.PTEWrites++
	return true
}

// WalkResult describes the outcome of a page walk.
type WalkResult struct {
	Present bool
	PFN     mem.PFN       // frame of the 4 KiB page containing the request
	Class   mem.PageClass // Class4K or Class2M
	Entry   PTE           // the leaf entry found
	// BasePFN/BaseVPN give the start of the mapping (equal to PFN/vpn for
	// 4 KiB pages; 512-aligned for 2 MiB pages).
	BaseVPN mem.VPN
	BasePFN mem.PFN
	// Levels is the number of table levels touched (memory accesses the
	// hardware walker would issue), 2..4.
	Levels int
}

// Walk translates vpn, descending the radix tree like the hardware walker.
func (t *Table) Walk(vpn mem.VPN) WalkResult {
	t.stats.Walks++
	n := t.root
	levels := 0
	for l := LevelPML4; l < LevelPT; l++ {
		levels++
		i := indexAt(vpn, l)
		if (l == LevelPD || l == LevelPDPT) && n.pte[i].Present() && n.pte[i].Huge() {
			class := mem.Class2M
			if l == LevelPDPT {
				class = mem.Class1G
			}
			base := vpn.AlignDown(class.BasePages())
			return WalkResult{
				Present: true,
				PFN:     n.pte[i].PFN() + mem.PFN(vpn-base),
				Class:   class,
				Entry:   n.pte[i],
				BaseVPN: base,
				BasePFN: n.pte[i].PFN(),
				Levels:  levels,
			}
		}
		if n.child[i] == nil {
			return WalkResult{Levels: levels}
		}
		n = n.child[i]
	}
	levels++
	i := indexAt(vpn, LevelPT)
	e := n.pte[i]
	if !e.Present() {
		return WalkResult{Levels: levels}
	}
	return WalkResult{
		Present: true,
		PFN:     e.PFN(),
		Class:   mem.Class4K,
		Entry:   e,
		BaseVPN: vpn,
		BasePFN: e.PFN(),
		Levels:  levels,
	}
}

// WalkFast is Walk for the flat-latency translation hot path: the same
// traversal, huge-page checks, and Walks accounting, but unrolled and
// returning only the fields that path consumes — as scalars, so the
// result travels in registers instead of a WalkResult copy. A zero
// return with present == false corresponds to a non-present WalkResult.
//
//tlbvet:hotpath
func (t *Table) WalkFast(vpn mem.VPN) (pfn mem.PFN, class mem.PageClass, baseVPN mem.VPN, basePFN mem.PFN, present bool) {
	t.stats.Walks++
	n := t.root.child[indexAt(vpn, LevelPML4)]
	if n == nil {
		return
	}
	i := indexAt(vpn, LevelPDPT)
	if e := n.pte[i]; e.Present() && e.Huge() {
		// PagesPer1G, not Class1G.BasePages(): the method inlines the
		// Shift() switch whose panic string is a (dead) heap escape,
		// which allocgate would flag inside this hotpath region.
		base := vpn.AlignDown(mem.PagesPer1G)
		return e.PFN() + mem.PFN(vpn-base), mem.Class1G, base, e.PFN(), true
	}
	if n = n.child[i]; n == nil {
		return
	}
	i = indexAt(vpn, LevelPD)
	if e := n.pte[i]; e.Present() && e.Huge() {
		base := vpn.AlignDown(mem.PagesPer2M)
		return e.PFN() + mem.PFN(vpn-base), mem.Class2M, base, e.PFN(), true
	}
	if n = n.child[i]; n == nil {
		return
	}
	e := n.pte[indexAt(vpn, LevelPT)]
	if !e.Present() {
		return
	}
	return e.PFN(), mem.Class4K, vpn, e.PFN(), true
}

// leafNode returns the PT-level node containing vpn's 4 KiB entry, or nil.
func (t *Table) leafNode(vpn mem.VPN) *node {
	n := t.root
	for l := LevelPML4; l < LevelPT; l++ {
		i := indexAt(vpn, l)
		if n.child[i] == nil {
			return nil
		}
		n = n.child[i]
	}
	return n
}

// Range calls fn for every present 4 KiB leaf entry in ascending VPN order.
// 2 MiB mappings are reported once with their base VPN and class Class2M.
// fn returning false stops the iteration.
func (t *Table) Range(fn func(vpn mem.VPN, e PTE, class mem.PageClass) bool) {
	t.rangeNode(t.root, 0, LevelPML4, fn)
}

func (t *Table) rangeNode(n *node, baseVPN mem.VPN, l Level, fn func(mem.VPN, PTE, mem.PageClass) bool) bool {
	span := mem.VPN(1) << uint(9*(int(LevelPT)-int(l)))
	for i := 0; i < entriesPerNode; i++ {
		vpn := baseVPN + mem.VPN(i)*span
		if l == LevelPT {
			if n.pte[i].Present() {
				if !fn(vpn, n.pte[i], mem.Class4K) {
					return false
				}
			}
			continue
		}
		if (l == LevelPD || l == LevelPDPT) && n.pte[i].Present() && n.pte[i].Huge() {
			class := mem.Class2M
			if l == LevelPDPT {
				class = mem.Class1G
			}
			if !fn(vpn, n.pte[i], class) {
				return false
			}
			continue
		}
		if n.child[i] != nil {
			if !t.rangeNode(n.child[i], vpn, l+1, fn) {
				return false
			}
		}
	}
	return true
}

// WalkLines returns the physical addresses of the page table entries a
// hardware walk of vpn touches, from the root down, stopping at the leaf
// (or at the first non-present level). The detailed walk-latency model
// feeds these through a cache hierarchy.
func (t *Table) WalkLines(vpn mem.VPN) []mem.PhysAddr {
	out := make([]mem.PhysAddr, 0, int(numLevels))
	n := t.root
	for l := LevelPML4; l < LevelPT; l++ {
		i := indexAt(vpn, l)
		out = append(out, n.phys+mem.PhysAddr(i*8))
		if (l == LevelPD || l == LevelPDPT) && n.pte[i].Present() && n.pte[i].Huge() {
			return out
		}
		if n.child[i] == nil {
			return out
		}
		n = n.child[i]
	}
	i := indexAt(vpn, LevelPT)
	return append(out, n.phys+mem.PhysAddr(i*8))
}
