package hybridtlb

import (
	"context"
	"os"
	"reflect"
	"testing"
)

// osWriteFile is a test shim (kept local so the test file reads cleanly).
func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestSchemesScenariosWorkloadsLists(t *testing.T) {
	if len(Schemes()) != 8 {
		t.Errorf("schemes = %v", Schemes())
	}
	if len(Scenarios()) != 6 {
		t.Errorf("scenarios = %v", Scenarios())
	}
	if len(Workloads()) != 14 {
		t.Errorf("workloads = %v", Workloads())
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
	if _, err := NewSystem(SchemeAnchor, WithFixedAnchorDistance(3)); err == nil {
		t.Error("invalid anchor distance accepted")
	}
	s, err := NewSystem(SchemeAnchor)
	if err != nil {
		t.Fatal(err)
	}
	if s.Scheme() != SchemeAnchor {
		t.Error("scheme name lost")
	}
}

func TestSystemMapTranslate(t *testing.T) {
	s, err := NewSystem(SchemeAnchor, WithFixedAnchorDistance(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Map([]Chunk{
		{VirtPage: 0x100, PhysPage: 0x5000, Pages: 64},
		{VirtPage: 0x1000, PhysPage: 0x9000, Pages: 32},
	}); err != nil {
		t.Fatal(err)
	}
	if s.FootprintPages() != 96 {
		t.Errorf("footprint = %d", s.FootprintPages())
	}
	// Byte-granular translation preserves the page offset.
	pa, ok := s.Translate(0x100<<12 | 0xabc)
	if !ok || pa != 0x5000<<12|0xabc {
		t.Errorf("translate = %#x, %v", pa, ok)
	}
	// Page-granular translation.
	pp, ok := s.TranslatePage(0x105)
	if !ok || pp != 0x5005 {
		t.Errorf("translate page = %#x, %v", pp, ok)
	}
	if _, ok := s.Translate(0x999999 << 12); ok {
		t.Error("unmapped address translated")
	}
	st := s.Stats()
	if st.Accesses != 3 || st.Misses == 0 {
		t.Errorf("stats = %+v", st)
	}
	if s.AnchorDistance() != 16 {
		t.Errorf("anchor distance = %d", s.AnchorDistance())
	}
}

func TestSystemAnchorHitsThroughPublicAPI(t *testing.T) {
	s, err := NewSystem(SchemeAnchor, WithFixedAnchorDistance(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Map([]Chunk{{VirtPage: 0, PhysPage: 1 << 20, Pages: 1024}}); err != nil {
		t.Fatal(err)
	}
	s.TranslatePage(0) // walk, fills anchor
	s.TranslatePage(5) // anchor hit
	if st := s.Stats(); st.CoalescedHits != 1 {
		t.Errorf("coalesced hits = %d, want 1", st.CoalescedHits)
	}
}

func TestSystemDynamicDistanceAndHistogram(t *testing.T) {
	s, err := NewSystem(SchemeAnchor)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Map([]Chunk{{VirtPage: 0, PhysPage: 0, Pages: 1 << 16}}); err != nil {
		t.Fatal(err)
	}
	if s.AnchorDistance() != 1<<16 {
		t.Errorf("dynamic selection picked %d", s.AnchorDistance())
	}
	h := s.ContiguityHistogram()
	if h[1<<16] != 1 || len(h) != 1 {
		t.Errorf("histogram = %v", h)
	}
	if changed, _ := s.Reselect(); changed {
		t.Error("stable mapping reselected a new distance")
	}
	if err := s.SetAnchorDistance(64); err != nil {
		t.Fatal(err)
	}
	if s.AnchorDistance() != 64 {
		t.Error("SetAnchorDistance ignored")
	}
	if err := s.SetAnchorDistance(7); err == nil {
		t.Error("invalid distance accepted")
	}
}

func TestSystemAddChunkUnmap(t *testing.T) {
	s, err := NewSystem(SchemeBase)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Map([]Chunk{{VirtPage: 0, PhysPage: 100, Pages: 10}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddChunk(Chunk{VirtPage: 100, PhysPage: 500, Pages: 10}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.TranslatePage(105); !ok {
		t.Error("added chunk not mapped")
	}
	s.Unmap(100, 10)
	if _, ok := s.TranslatePage(105); ok {
		t.Error("unmapped page still translates")
	}
	if err := s.AddChunk(Chunk{VirtPage: 5, PhysPage: 900, Pages: 2}); err == nil {
		t.Error("overlapping AddChunk accepted")
	}
}

func TestWithHardware(t *testing.T) {
	s, err := NewSystem(SchemeBase, WithHardware(Hardware{
		L2Entries: 16, L2Ways: 2,
		L2HitCycles: 3, WalkCycles: 100,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Map([]Chunk{{VirtPage: 0, PhysPage: 0, Pages: 8192}}); err != nil {
		t.Fatal(err)
	}
	s.TranslatePage(0)
	if st := s.Stats(); st.Cycles != 100 {
		t.Errorf("walk cycles = %d, want 100", st.Cycles)
	}
}

func TestSelectAnchorDistance(t *testing.T) {
	// All 64 KiB chunks: the optimal distance is 16 pages.
	if d := SelectAnchorDistance(map[uint64]uint64{16: 100}); d != 16 {
		t.Errorf("distance = %d, want 16", d)
	}
	if d := SelectAnchorDistance(nil); d != 2 {
		t.Errorf("empty histogram distance = %d, want 2", d)
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	res, err := Simulate(SimulationConfig{
		Scheme:         SchemeAnchor,
		Workload:       "gups",
		Scenario:       ScenarioMedium,
		Accesses:       100_000,
		FootprintPages: 1 << 14,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != SchemeAnchor || res.Workload != "gups" || res.Scenario != ScenarioMedium {
		t.Errorf("labels = %+v", res)
	}
	if res.Stats.Accesses != 100_000 {
		t.Errorf("accesses = %d", res.Stats.Accesses)
	}
	if res.TranslationCPI <= 0 {
		t.Error("no translation CPI")
	}
	if got := res.CPIRegularHit + res.CPICoalescedHit + res.CPIWalk; got < res.TranslationCPI*0.999 || got > res.TranslationCPI*1.001 {
		t.Error("CPI components do not sum")
	}
	if sum := res.L2RegularHitFraction + res.L2CoalescedHitFraction + res.L2MissFraction; sum < 0.999 || sum > 1.001 {
		t.Errorf("L2 fractions sum to %v", sum)
	}
	if res.MissesPerMillionInstructions() <= 0 {
		t.Error("MPMI not positive")
	}
}

func TestSimulateValidation(t *testing.T) {
	base := SimulationConfig{Scheme: SchemeBase, Workload: "gups", Scenario: ScenarioLow, Accesses: 1000, FootprintPages: 4096}
	for _, mutate := range []func(*SimulationConfig){
		func(c *SimulationConfig) { c.Scheme = "bogus" },
		func(c *SimulationConfig) { c.Workload = "bogus" },
		func(c *SimulationConfig) { c.Scenario = "bogus" },
	} {
		c := base
		mutate(&c)
		if _, err := Simulate(c); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestSimulateStaticIdeal(t *testing.T) {
	cfg := SimulationConfig{
		Workload:       "omnetpp",
		Scenario:       ScenarioLow,
		Accesses:       30_000,
		FootprintPages: 1 << 13,
		Seed:           2,
	}
	best, err := SimulateStaticIdeal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheme = SchemeAnchor
	dyn, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if best.Stats.Misses > dyn.Stats.Misses {
		t.Errorf("static-ideal (%d misses) lost to dynamic (%d)", best.Stats.Misses, dyn.Stats.Misses)
	}
	if _, err := SimulateStaticIdeal(SimulationConfig{Workload: "bogus", Scenario: ScenarioLow}); err == nil {
		t.Error("bad workload accepted")
	}
}

// TestSimulateStaticIdealCostModel pins the serial and concurrent
// static-ideal entry points to the same shared config builder: a
// non-default cost model must be carried (not silently dropped, as the
// serial path's hand-rolled sim.Config once did) and produce identical
// results on both paths, and an invalid cost model must be rejected by
// both.
func TestSimulateStaticIdealCostModel(t *testing.T) {
	cfg := SimulationConfig{
		Workload:       "omnetpp",
		Scenario:       ScenarioLow,
		Accesses:       20_000,
		FootprintPages: 1 << 13,
		Seed:           3,
		CostModel:      "capacity-aware",
	}
	serial, err := SimulateStaticIdeal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	concurrent, err := SimulateStaticIdealContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, concurrent) {
		t.Errorf("static-ideal paths diverged under cost model %q:\nserial:     %+v\nconcurrent: %+v",
			cfg.CostModel, serial, concurrent)
	}

	cfg.CostModel = "bogus-model"
	if _, err := SimulateStaticIdeal(cfg); err == nil {
		t.Error("serial path accepted an invalid cost model")
	}
	if _, err := SimulateStaticIdealContext(context.Background(), cfg); err == nil {
		t.Error("concurrent path accepted an invalid cost model")
	}
}

func TestGenerateMapping(t *testing.T) {
	chunks, err := GenerateMapping(ScenarioLow, 4096, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, c := range chunks {
		total += c.Pages
		if c.Pages > 16 {
			// The final remainder chunk may be short but never long.
			t.Errorf("low-contiguity chunk of %d pages", c.Pages)
		}
	}
	if total != 4096 {
		t.Errorf("total = %d", total)
	}
	// The generated mapping feeds straight into a System.
	s, err := NewSystem(SchemeAnchor)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Map(chunks); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateMapping("bogus", 100, 1, 0); err == nil {
		t.Error("bogus scenario accepted")
	}
}

func TestWithCostModel(t *testing.T) {
	if _, err := NewSystem(SchemeAnchor, WithCostModel("bogus")); err == nil {
		t.Error("bogus cost model accepted")
	}
	for _, name := range []string{CostModelEntryCount, CostModelCoverageWeighted, CostModelCapacityAware} {
		if _, err := NewSystem(SchemeAnchor, WithCostModel(name)); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
}

func TestMapRegionsPublicAPI(t *testing.T) {
	s, err := NewSystem(SchemeAnchor)
	if err != nil {
		t.Fatal(err)
	}
	// Mixed mapping: fine-grained region then a huge region.
	var chunks []Chunk
	vp := uint64(0x10000)
	for i := 0; i < 256; i++ {
		chunks = append(chunks, Chunk{VirtPage: vp, PhysPage: uint64(1<<22 + i*600), Pages: 4})
		vp += 4
	}
	chunks = append(chunks, Chunk{VirtPage: vp, PhysPage: 1 << 27, Pages: 1 << 14})
	if err := s.MapRegions(chunks); err != nil {
		t.Fatal(err)
	}
	regions := s.Regions()
	if len(regions) != 2 {
		t.Fatalf("regions = %+v", regions)
	}
	if regions[0].Distance >= regions[1].Distance {
		t.Errorf("region distances not differentiated: %+v", regions)
	}
	// Translation still correct across both regions.
	if pp, ok := s.TranslatePage(0x10000); !ok || pp != 1<<22 {
		t.Errorf("fine region translate = %#x, %v", pp, ok)
	}
	if pp, ok := s.TranslatePage(vp + 100); !ok || pp != 1<<27+100 {
		t.Errorf("huge region translate = %#x, %v", pp, ok)
	}
	// Plain Map clears the region table.
	if err := s.Map(chunks[:1]); err != nil {
		t.Fatal(err)
	}
	if s.Regions() != nil {
		t.Error("Map kept regions")
	}
	// Non-anchor schemes reject MapRegions.
	q, _ := NewSystem(SchemeBase)
	if err := q.MapRegions(chunks); err == nil {
		t.Error("MapRegions on base scheme accepted")
	}
}

func TestSimulateExtensions(t *testing.T) {
	cfg := SimulationConfig{
		Scheme:         SchemeAnchor,
		Workload:       "canneal",
		Scenario:       ScenarioEager,
		Accesses:       60_000,
		FootprintPages: 1 << 15,
		Seed:           4,
		Pressure:       0.3,
	}
	plain, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CostModel = CostModelCapacityAware
	capac, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The two models may pick different distances; neither should be
	// catastrophically worse (tolerance: 1% of the trace).
	if capac.Stats.Misses > plain.Stats.Misses+cfg.Accesses/100 {
		t.Errorf("capacity-aware (%d) clearly worse than entry-count (%d)", capac.Stats.Misses, plain.Stats.Misses)
	}
	cfg.CostModel = "nonesuch"
	if _, err := Simulate(cfg); err == nil {
		t.Error("bad cost model accepted")
	}
	cfg.CostModel = ""
	cfg.MultiRegionAnchors = true
	if _, err := Simulate(cfg); err != nil {
		t.Errorf("multi-region simulate failed: %v", err)
	}
}

func TestProtectPublicAPI(t *testing.T) {
	s, err := NewSystem(SchemeAnchor, WithFixedAnchorDistance(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Map([]Chunk{{VirtPage: 0, PhysPage: 1 << 20, Pages: 128}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Protect(40, 16, "r--"); err != nil {
		t.Fatal(err)
	}
	// Pages on both sides of the boundary still translate correctly.
	for _, v := range []uint64{39, 40, 55, 56} {
		pp, ok := s.TranslatePage(v)
		if !ok || pp != 1<<20+v {
			t.Fatalf("translate(%d) = %#x, %v", v, pp, ok)
		}
	}
	for _, bad := range []string{"", "rw", "qw-", "rq-", "rwq", "rwxx"} {
		if err := s.Protect(0, 1, bad); err == nil {
			t.Errorf("protection %q accepted", bad)
		}
	}
}

func TestSimulateTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/w.trc"
	// Record via the tracegen pipeline's underlying packages is internal;
	// at the public level, record with tracegen-equivalent settings by
	// generating a matching simulation and comparing replays determinism:
	// simplest check: a missing file errors cleanly.
	cfg := SimulationConfig{
		Scheme:         SchemeBase,
		Workload:       "gups",
		Scenario:       ScenarioLow,
		Accesses:       1000,
		FootprintPages: 4096,
		TracePath:      path,
	}
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("missing trace file accepted")
	}
	// A non-trace file is rejected by the header check.
	if err := osWriteFile(path, []byte("not a trace")); err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("bogus trace file accepted")
	}
}

func TestCompactAndPromotePublicAPI(t *testing.T) {
	s, err := NewSystem(SchemeAnchor)
	if err != nil {
		t.Fatal(err)
	}
	// 32 scattered 16-page chunks.
	var chunks []Chunk
	vp, pp := uint64(0x10000), uint64(1<<22)
	for i := 0; i < 32; i++ {
		chunks = append(chunks, Chunk{VirtPage: vp, PhysPage: pp, Pages: 16})
		vp += 16
		pp += 16 + 512
	}
	if err := s.Map(chunks); err != nil {
		t.Fatal(err)
	}
	distBefore := s.AnchorDistance()
	if got := s.Compact(1 << 26); got != 1 {
		t.Errorf("chunks after compaction = %d, want 1", got)
	}
	if s.AnchorDistance() <= distBefore {
		t.Errorf("distance did not grow after compaction: %d -> %d", distBefore, s.AnchorDistance())
	}
	if pa, ok := s.TranslatePage(0x10000 + 100); !ok || pa == 0 {
		t.Error("translation broken after compaction")
	}

	// Promotion through the facade (THP scheme).
	q, err := NewSystem(SchemeTHP)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Map([]Chunk{{VirtPage: 0, PhysPage: 0, Pages: 1024}}); err != nil {
		t.Fatal(err)
	}
	q.Unmap(100, 10) // demotes one huge page
	if err := q.AddChunk(Chunk{VirtPage: 100, PhysPage: 100, Pages: 10}); err != nil {
		t.Fatal(err)
	}
	if n := q.PromoteHugePages(); n != 1 {
		t.Errorf("promoted = %d, want 1", n)
	}
}
