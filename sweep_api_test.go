package hybridtlb

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestSimulateSweepMatchesSimulate(t *testing.T) {
	var cfgs []SimulationConfig
	for _, scheme := range []string{SchemeBase, SchemeAnchor} {
		for _, wl := range []string{"gups", "omnetpp"} {
			cfgs = append(cfgs, SimulationConfig{
				Scheme:         scheme,
				Workload:       wl,
				Scenario:       "demand",
				Accesses:       20_000,
				FootprintPages: 1 << 12,
				Seed:           3,
			})
		}
	}
	// The last config repeats the first: it must be cache-served.
	cfgs = append(cfgs, cfgs[0])

	swept, err := SimulateSweep(context.Background(), cfgs, SweepOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != len(cfgs) {
		t.Fatalf("got %d results for %d configs", len(swept), len(cfgs))
	}
	for i, cfg := range cfgs {
		serial, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if swept[i].Err != nil {
			t.Fatalf("config %d failed: %v", i, swept[i].Err)
		}
		if !reflect.DeepEqual(serial, swept[i].SimulationResult) {
			t.Errorf("config %d (%s/%s) differs from serial Simulate:\n%+v\nvs\n%+v",
				i, cfg.Scheme, cfg.Workload, serial, swept[i].SimulationResult)
		}
	}
	if swept[len(swept)-1].Cached != true {
		t.Error("duplicate config was not served from the cache")
	}

	var calls, lastDone, lastTotal int
	if _, err := SimulateSweep(context.Background(), cfgs, SweepOptions{
		Parallelism: 2,
		Progress:    func(done, total int) { calls++; lastDone, lastTotal = done, total },
	}); err != nil {
		t.Fatal(err)
	}
	if calls != len(cfgs) || lastDone != len(cfgs) || lastTotal != len(cfgs) {
		t.Errorf("progress: %d calls, final %d/%d, want %d/%d/%d",
			calls, lastDone, lastTotal, len(cfgs), len(cfgs), len(cfgs))
	}
}

func TestSimulateSweepPerJobErrors(t *testing.T) {
	cfgs := []SimulationConfig{
		{Scheme: SchemeAnchor, Workload: "gups", Scenario: "demand",
			Accesses: 5_000, FootprintPages: 1 << 10},
		{Scheme: "bogus", Workload: "gups", Scenario: "demand"},
		{Scheme: SchemeBase, Workload: "gups", Scenario: "demand", TracePath: "x.trc"},
	}
	results, err := SimulateSweep(context.Background(), cfgs, SweepOptions{})
	if err == nil {
		t.Fatal("sweep with invalid configs returned nil error")
	}
	if results[0].Err != nil {
		t.Errorf("valid config failed: %v", results[0].Err)
	}
	if results[0].Stats.Accesses == 0 {
		t.Error("valid config did not simulate")
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "job 1") {
		t.Errorf("invalid scheme error = %v", results[1].Err)
	}
	if results[2].Err == nil || !strings.Contains(results[2].Err.Error(), "TracePath") {
		t.Errorf("trace replay error = %v", results[2].Err)
	}
	if !strings.Contains(err.Error(), "2 of 3") {
		t.Errorf("aggregate error = %v", err)
	}
}
