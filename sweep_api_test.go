package hybridtlb

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestSimulateSweepMatchesSimulate(t *testing.T) {
	var cfgs []SimulationConfig
	for _, scheme := range []string{SchemeBase, SchemeAnchor} {
		for _, wl := range []string{"gups", "omnetpp"} {
			cfgs = append(cfgs, SimulationConfig{
				Scheme:         scheme,
				Workload:       wl,
				Scenario:       "demand",
				Accesses:       20_000,
				FootprintPages: 1 << 12,
				Seed:           3,
			})
		}
	}
	// The last config repeats the first: it must be cache-served.
	cfgs = append(cfgs, cfgs[0])

	swept, err := SimulateSweep(context.Background(), cfgs, SweepOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != len(cfgs) {
		t.Fatalf("got %d results for %d configs", len(swept), len(cfgs))
	}
	for i, cfg := range cfgs {
		serial, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if swept[i].Err != nil {
			t.Fatalf("config %d failed: %v", i, swept[i].Err)
		}
		if !reflect.DeepEqual(serial, swept[i].SimulationResult) {
			t.Errorf("config %d (%s/%s) differs from serial Simulate:\n%+v\nvs\n%+v",
				i, cfg.Scheme, cfg.Workload, serial, swept[i].SimulationResult)
		}
	}
	if swept[len(swept)-1].Cached != true {
		t.Error("duplicate config was not served from the cache")
	}

	var calls, lastDone, lastTotal int
	if _, err := SimulateSweep(context.Background(), cfgs, SweepOptions{
		Parallelism: 2,
		Progress:    func(done, total int) { calls++; lastDone, lastTotal = done, total },
	}); err != nil {
		t.Fatal(err)
	}
	if calls != len(cfgs) || lastDone != len(cfgs) || lastTotal != len(cfgs) {
		t.Errorf("progress: %d calls, final %d/%d, want %d/%d/%d",
			calls, lastDone, lastTotal, len(cfgs), len(cfgs), len(cfgs))
	}
}

func TestSweepProbe(t *testing.T) {
	cfgs := []SimulationConfig{
		{Scheme: SchemeAnchor, Workload: "mcf", Scenario: "low",
			Accesses: 30_000, FootprintPages: 1 << 12, Seed: 7,
			EpochInstructions: 20_000},
		{Scheme: SchemeBase, Workload: "gups", Scenario: "demand",
			Accesses: 30_000, FootprintPages: 1 << 12, Seed: 7,
			EpochInstructions: 20_000},
	}
	// The duplicate is cache-served and must fire no samples.
	cfgs = append(cfgs, cfgs[0])

	var mu sync.Mutex
	samples := map[int][]EpochSample{}
	swept, err := SimulateSweep(context.Background(), cfgs, SweepOptions{
		Parallelism: 2,
		Probe: func(config int, s EpochSample) {
			mu.Lock()
			samples[config] = append(samples[config], s)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		got := samples[i]
		if len(got) == 0 {
			t.Fatalf("config %d fired no epoch samples", i)
		}
		for j, s := range got {
			if s.Epoch != j+1 {
				t.Errorf("config %d sample %d: epoch %d, want %d", i, j, s.Epoch, j+1)
			}
			if s.Stats.Accesses == 0 {
				t.Errorf("config %d sample %d: zero accesses in snapshot", i, j)
			}
			if j > 0 && s.Instructions <= got[j-1].Instructions {
				t.Errorf("config %d sample %d: instructions did not advance (%d -> %d)",
					i, j, got[j-1].Instructions, s.Instructions)
			}
		}
	}
	if last := samples[0][len(samples[0])-1]; last.AnchorDistance == 0 {
		t.Error("anchor-scheme sample reports zero anchor distance")
	}
	for _, s := range samples[1] {
		if s.AnchorDistance != 0 {
			t.Errorf("base-scheme sample reports anchor distance %d", s.AnchorDistance)
		}
	}
	if len(samples[2]) != 0 {
		t.Errorf("cache-served duplicate fired %d samples", len(samples[2]))
	}
	if !swept[2].Cached {
		t.Error("duplicate config was not served from the cache")
	}

	// Observation must be free: probed results match plain Simulate.
	for i, cfg := range cfgs {
		serial, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, swept[i].SimulationResult) {
			t.Errorf("config %d differs from serial Simulate:\n%+v\nvs\n%+v",
				i, serial, swept[i].SimulationResult)
		}
	}
}

func TestSimulateSweepPerJobErrors(t *testing.T) {
	cfgs := []SimulationConfig{
		{Scheme: SchemeAnchor, Workload: "gups", Scenario: "demand",
			Accesses: 5_000, FootprintPages: 1 << 10},
		{Scheme: "bogus", Workload: "gups", Scenario: "demand"},
		{Scheme: SchemeBase, Workload: "gups", Scenario: "demand", TracePath: "x.trc"},
	}
	results, err := SimulateSweep(context.Background(), cfgs, SweepOptions{})
	if err == nil {
		t.Fatal("sweep with invalid configs returned nil error")
	}
	if results[0].Err != nil {
		t.Errorf("valid config failed: %v", results[0].Err)
	}
	if results[0].Stats.Accesses == 0 {
		t.Error("valid config did not simulate")
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "job 1") {
		t.Errorf("invalid scheme error = %v", results[1].Err)
	}
	if results[2].Err == nil || !strings.Contains(results[2].Err.Error(), "TracePath") {
		t.Errorf("trace replay error = %v", results[2].Err)
	}
	if !strings.Contains(err.Error(), "2 of 3") {
		t.Errorf("aggregate error = %v", err)
	}
}
